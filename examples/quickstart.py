#!/usr/bin/env python
"""Quickstart: offload two tasks to an unreliable GPU server.

Builds a small task set with benefit functions, lets the Offloading
Decision Manager pick what to offload and at which estimated response
time, runs 10 seconds on the simulated server, and prints the outcome —
including the ASCII Gantt chart of the schedule.

Run:  python examples/quickstart.py
"""

from repro import (
    BenefitFunction,
    BenefitPoint,
    OffloadableTask,
    OffloadingSystem,
    Task,
    TaskSet,
)


def main() -> None:
    # An offloadable vision task: locally it takes 150 ms; offloading
    # needs 20 ms setup, compensation falls back to the local version.
    # The benefit function says: waiting up to 100 ms for the server is
    # worth 3x the local quality, up to 200 ms is worth 5x.
    vision = OffloadableTask(
        task_id="vision",
        wcet=0.150,
        period=1.0,
        setup_time=0.020,
        compensation_time=0.150,
        post_time=0.010,
        benefit=BenefitFunction(
            [
                BenefitPoint(0.0, 1.0),
                BenefitPoint(0.100, 3.0),
                BenefitPoint(0.200, 5.0),
            ]
        ),
    )

    # A control loop that must stay local (no benefit function).
    control = Task(task_id="control", wcet=0.050, period=0.25)

    tasks = TaskSet([vision, control])
    print(f"task set: {len(tasks)} tasks, local utilization "
          f"{tasks.total_utilization:.2f}")

    # Decide (exact DP) and simulate against an idle GPU server.
    system = OffloadingSystem(tasks, scenario="idle", solver="dp", seed=42)
    decision = system.decide()
    for task_id, r in sorted(decision.response_times.items()):
        mode = f"offload with R_i = {r * 1000:.0f} ms" if r else "local"
        print(f"  {task_id}: {mode}")

    report = system.run(horizon=10.0)
    print()
    print(report.summary())
    print()
    print("schedule (first 3 s):  # local  s setup  c compensation  p post")
    print(report.trace.gantt(width=72, horizon=3.0))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Adaptive re-estimation: recovering from a wrong server estimate.

Figure 3 of the paper shows how much benefit a wrong response-time
estimate costs.  This example runs the architecture's natural fix: the
Benefit and Response Time Estimator observes every offloaded job, so
between 10-second windows the system corrects its believed response
times and re-runs the Offloading Decision Manager.

Starting from beliefs 2.5x too optimistic on a moderately loaded
server, watch the compensation rate collapse and the realized benefit
climb — while (this being the whole point of the mechanism) not one
deadline is ever missed, even in the badly mis-estimated first window.

Run:  python examples/adaptive_offloading.py
"""

from dataclasses import replace

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import TaskSet
from repro.runtime.adaptive import AdaptiveOffloadingSystem
from repro.vision.tasks import table1_task_set


def optimistic_beliefs(factor: float) -> TaskSet:
    """The Table 1 task set with response times scaled by ``factor``."""
    beliefs = TaskSet()
    for task in table1_task_set():
        points = [task.benefit.points[0]] + [
            BenefitPoint(p.response_time * factor, p.benefit,
                         p.setup_time, p.compensation_time, p.label)
            for p in task.benefit.points[1:]
        ]
        beliefs.add(replace(task, benefit=BenefitFunction(points)))
    return beliefs


def main() -> None:
    print("initial beliefs: server 2.5x faster than it actually is\n")
    system = AdaptiveOffloadingSystem(
        optimistic_beliefs(1 / 2.5),
        scenario="not_busy",
        seed=3,
        window=10.0,
    )
    report = system.run(num_windows=6)

    print(f"{'window':>6} {'returned':>9} {'compensated':>12} "
          f"{'benefit':>9} {'misses':>7}  corrections")
    for w in report.windows:
        corrections = ", ".join(
            f"{tid}x{f:.2f}" for tid, f in sorted(
                w.correction_factors.items()
            )
        ) or "-"
        print(
            f"{w.window:>6} {w.return_rate:>8.0%} "
            f"{w.compensation_rate:>11.0%} {w.realized_benefit:>9.0f} "
            f"{w.deadline_misses:>7}  {corrections}"
        )

    first, last = report.windows[0], report.windows[-1]
    print(
        f"\nreturn rate {first.return_rate:.0%} -> {last.return_rate:.0%}, "
        f"benefit {first.realized_benefit:.0f} -> "
        f"{last.realized_benefit:.0f}, deadline misses always 0."
    )


if __name__ == "__main__":
    main()

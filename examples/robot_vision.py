#!/usr/bin/env python
"""The paper's robot-vision case study, end to end (§6.1).

Reproduces the full §6.1 pipeline on the simulated substrate:

1. quantify per-level image quality with genuine PSNR round-trips on a
   synthetic scene (the Benefit side of the estimator);
2. probe the GPU server model for per-level response-time distributions
   (the Response Time side);
3. assemble the measured benefit functions into the four-task set;
4. run the Offloading Decision Manager and simulate all three server
   scenarios, printing the quality improvement over pure-local
   execution.

Run:  python examples/robot_vision.py
"""

from repro.estimator.sampling import probe_server
from repro.runtime.system import OffloadingSystem
from repro.server.scenarios import SCENARIOS
from repro.sim.rng import derive_seed
from repro.vision.tasks import (
    DEFAULT_LEVEL_FACTORS,
    TABLE1,
    build_measured_task_set,
    level_quality,
    measured_benefit_functions,
)


def main() -> None:
    print("=== 1. level qualities (PSNR of scaling round-trips) ===")
    for factor in DEFAULT_LEVEL_FACTORS:
        print(f"  scale {factor:.2f}: {level_quality(factor):6.2f} dB")

    print("\n=== 2. probing the idle server per task and level ===")
    level_samples = {}
    for row in TABLE1:
        anchors = [r for r, _ in row.points]
        collections = probe_server(
            SCENARIOS["idle"],
            levels=anchors,
            samples_per_level=60,
            seed=derive_seed(7, row.task_id),
        )
        level_samples[row.task_id] = {
            factor: collections[anchor]
            for factor, anchor in zip(DEFAULT_LEVEL_FACTORS, anchors)
        }
        p90 = [
            f"{collections[a].percentile(90) * 1000:.0f}ms" for a in anchors
        ]
        print(f"  {row.task_id} ({row.description}): p90 = {p90}")

    print("\n=== 3. measured benefit functions ===")
    functions = measured_benefit_functions(level_samples, percentile=90)
    for task_id, fn in sorted(functions.items()):
        points = "  ".join(
            f"({p.response_time * 1000:.0f}ms→{p.benefit:.1f}dB)"
            for p in fn.points
        )
        print(f"  {task_id}: {points}")

    tasks = build_measured_task_set(functions)

    print("\n=== 4. decide + simulate per scenario (10 s) ===")
    print(f"{'scenario':>10} {'offloaded':>22} {'returned':>9} "
          f"{'benefit':>9} {'misses':>7}")
    for name in ("busy", "not_busy", "idle"):
        system = OffloadingSystem(tasks, scenario=name, solver="dp", seed=7)
        report = system.run(horizon=10.0)
        offloaded = ",".join(report.decision.offloaded_task_ids) or "-"
        print(
            f"{name:>10} {offloaded:>22} {report.return_rate:>8.0%} "
            f"{report.realized_benefit:>9.1f} {report.deadline_misses:>7}"
        )

    print("\nNote: zero misses in every scenario — the compensation "
          "mechanism keeps the hard real-time guarantee even when the "
          "server is saturated.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Exporting machine-readable artifacts from a run.

Runs the case study once and writes, into ``./artifacts``:

* ``workload.json`` — the task set in the repro-taskset interchange
  format (editable, reloadable);
* ``trace.json`` — every job, execution segment and deadline event;
* ``schedule.svg`` — the schedule as a colour Gantt timeline;
* ``benefit_series.csv`` — per-task realized benefits for spreadsheets.

Run:  python examples/export_artifacts.py
"""

import pathlib

from repro.reporting.export import series_to_csv, trace_to_json, trace_to_svg
from repro.runtime.system import OffloadingSystem
from repro.vision.tasks import table1_task_set
from repro.workloads.io import dumps


def main() -> None:
    out = pathlib.Path("artifacts")
    out.mkdir(exist_ok=True)

    tasks = table1_task_set()
    system = OffloadingSystem(tasks, scenario="not_busy", seed=9)
    report = system.run(horizon=10.0)
    print(report.summary())

    (out / "workload.json").write_text(dumps(tasks))
    (out / "trace.json").write_text(trace_to_json(report.trace))
    (out / "schedule.svg").write_text(
        trace_to_svg(report.trace, horizon=6.0)
    )

    per_task = {}
    for task in tasks:
        benefits = [
            rec.benefit for rec in report.trace.jobs_of(task.task_id)
            if rec.finish is not None
        ]
        per_task[task.task_id] = benefits
    depth = min(len(v) for v in per_task.values())
    (out / "benefit_series.csv").write_text(
        series_to_csv({k: v[:depth] for k, v in per_task.items()})
    )

    print("\nwrote:")
    for name in ("workload.json", "trace.json", "schedule.svg",
                 "benefit_series.csv"):
        path = out / name
        print(f"  {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()

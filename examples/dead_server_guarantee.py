#!/usr/bin/env python
"""The hard real-time guarantee, stress-tested.

Demonstrates the property the whole mechanism exists for: with a server
that NEVER answers and every phase running at its full WCET, a
Theorem-3-feasible configuration still meets every deadline through
local compensation — under the paper's split-deadline EDF.  The naive
baseline (setup shares the job's full deadline) misses under the same
conditions, reproducing §5.1's "this performs poorly" remark.

Run:  python examples/dead_server_guarantee.py
"""

from repro.core.schedulability import OffloadAssignment, theorem3_test
from repro.core.task import Task, TaskSet
from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import NeverRespondsTransport
from repro.sim.engine import Simulator


def build_tasks() -> TaskSet:
    offload = OffloadableTask(
        task_id="offload",
        wcet=0.25,
        period=1.0,
        setup_time=0.05,
        compensation_time=0.25,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 1.0), BenefitPoint(0.6, 10.0)]
        ),
    )
    return TaskSet([offload, Task("local", 0.2, 0.85)])


def run(mode: str) -> None:
    tasks = build_tasks()
    sim = Simulator()
    scheduler = OffloadingScheduler(
        sim,
        tasks,
        response_times={"offload": 0.6},
        transport=NeverRespondsTransport(),
        deadline_mode=mode,
    )
    trace = scheduler.run(8.0)
    comp = trace.compensation_rate()
    print(f"  [{mode:>5}] jobs={len(trace.jobs)}  "
          f"compensation rate={comp:.0%}  "
          f"deadline misses={trace.deadline_miss_count}")
    if trace.misses:
        worst = max(trace.misses, key=lambda m: m.lateness)
        print(f"          worst miss: {worst.task_id}#{worst.job_id} "
              f"late by {worst.lateness * 1000:.0f} ms")
    print(trace.gantt(width=70, horizon=3.0))


def main() -> None:
    tasks = build_tasks()
    check = theorem3_test(tasks, [OffloadAssignment("offload", 0.6)])
    print(
        f"Theorem 3 demand rate: {check.total_demand_rate:.3f} "
        f"(feasible: {check.feasible})\n"
    )
    print("server: NEVER returns a result; all phases run at WCET\n")
    run("split")
    print()
    run("naive")
    print(
        "\nSame tasks, same decisions, same dead server: the paper's "
        "proportional deadline\nsplit runs setup early enough that the "
        "compensation always fits; naive EDF\ndelays setup behind the "
        "local task and blows the deadline."
    )


if __name__ == "__main__":
    main()

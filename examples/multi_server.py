#!/usr/bin/env python
"""Choosing between two unreliable servers — the multi-server extension.

A robot can reach a nearby *edge* box (fast network, modest GPU, lightly
loaded) and a *cloud* GPU farm (slow network, strong GPUs, heavily
contended).  Per task and per server the estimator measures a benefit
function; one multiple-choice knapsack then jointly decides, for every
task: local or offloaded, to which server, at which estimated response
time.

The run ends on the discrete-event simulation of BOTH servers at once,
with requests routed per the decision — and, as always, every deadline
met regardless of what the servers do.

Run:  python examples/multi_server.py
"""

from repro.core.multiserver import (
    MultiServerDecisionManager,
    RoutingTransport,
)
from repro.estimator.benefit_builder import quality_benefit
from repro.estimator.sampling import probe_server
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.server.scenarios import SCENARIOS, ServerScenario, build_server
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, derive_seed
from repro.vision.tasks import (
    DEFAULT_LEVEL_FACTORS,
    TABLE1,
    level_quality,
    table1_task_set,
)

#: The two candidate servers: an idle edge box with one mid-speed GPU,
#: and the busy two-GPU cloud farm from the case study.
EDGE = ServerScenario(
    name="edge",
    description="nearby edge box: 1 GPU, idle, crisp network",
    num_gpus=1,
    gpu_speed=0.8,
    bandwidth=5.0e6,
    base_latency=0.001,
    background_rate=0.0,
)
CLOUD = ServerScenario(
    name="cloud",
    description="cloud farm: 2 fast GPUs, moderately contended, WAN",
    num_gpus=2,
    gpu_speed=1.5,
    bandwidth=1.5e6,
    base_latency=0.015,
    background_rate=9.0,
    background_mean_work=0.08,
)


def measure_benefits(seed: int = 11):
    """Probe both servers per task level and build benefit functions."""
    benefits = {"edge": {}, "cloud": {}}
    for row in TABLE1:
        anchors = [r for r, _ in row.points]
        qualities = {
            factor: level_quality(factor) for factor in DEFAULT_LEVEL_FACTORS
        }
        for name, scenario in (("edge", EDGE), ("cloud", CLOUD)):
            samples = probe_server(
                scenario, levels=anchors, samples_per_level=40,
                seed=derive_seed(seed, f"{name}:{row.task_id}"),
            )
            per_level = {
                factor: samples[anchor]
                for factor, anchor in zip(DEFAULT_LEVEL_FACTORS, anchors)
            }
            benefits[name][row.task_id] = quality_benefit(
                local_quality=row.local_benefit,
                level_samples=per_level,
                level_qualities=qualities,
                percentile=90,
            )
    return benefits


def main() -> None:
    tasks = table1_task_set()
    print("probing both servers (per task, per level)...")
    benefits = measure_benefits()

    decision = MultiServerDecisionManager("dp").decide(tasks, benefits)
    print("\nplacements:")
    for task_id, (server, r) in sorted(decision.placements.items()):
        where = f"{server} @ R={r * 1000:.0f} ms" if server else "local"
        print(f"  {task_id}: {where}")
    print(f"expected benefit: {decision.expected_benefit:.1f}  "
          f"(demand rate {decision.total_demand_rate:.3f})")

    # run both servers side by side on one engine
    sim = Simulator()
    streams = RandomStreams(seed=23)
    built = {
        "edge": build_server(sim, EDGE, streams.spawn("edge")),
        "cloud": build_server(sim, CLOUD, streams.spawn("cloud")),
    }
    routing = RoutingTransport(
        decision.routes,
        {name: b.transport for name, b in built.items()},
    )
    scheduler = OffloadingScheduler(
        sim, tasks, response_times=decision.response_times,
        transport=routing,
    )
    trace = scheduler.run(10.0)

    offloaded = [r for r in trace.jobs.values() if r.offloaded]
    returned = sum(1 for r in offloaded if r.result_returned)
    print(f"\n10 s run: {len(trace.jobs)} jobs, "
          f"{len(offloaded)} offloaded, {returned} returned in time, "
          f"{trace.deadline_miss_count} deadline misses")
    for name, b in built.items():
        print(f"  {name}: {b.transport.submitted} requests, "
              f"{b.transport.completed} completed")


if __name__ == "__main__":
    main()

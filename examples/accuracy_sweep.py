#!/usr/bin/env python
"""Estimation-accuracy sensitivity (the paper's Figure 3, §6.2).

Sweeps the response-time estimation error from −40 % to +40 %, decides
with both the exact DP and the HEU-OE heuristic on the *believed*
benefit functions, scores against the *true* ones, and renders the two
curves as an ASCII chart.

Run:  python examples/accuracy_sweep.py
"""

from repro.experiments.fig3 import format_fig3, run_fig3


def ascii_chart(
    ratios, series_a, series_b, label_a="dp", label_b="heu", height=12
):
    """Two overlaid line series as ASCII art."""
    lo = min(min(series_a), min(series_b))
    hi = max(max(series_a), max(series_b))
    span = hi - lo or 1.0
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + span * level / height
        cells = []
        for a, b in zip(series_a, series_b):
            near_a = abs(a - threshold) <= span / (2 * height)
            near_b = abs(b - threshold) <= span / (2 * height)
            if near_a and near_b:
                cells.append("*")
            elif near_a:
                cells.append("D")
            elif near_b:
                cells.append("h")
            else:
                cells.append(" ")
        rows.append(f"{threshold:6.3f} |" + "   ".join(cells))
    axis = "        " + "   ".join(f"{int(r * 100):+3d}" for r in ratios)
    return "\n".join(rows) + "\n" + axis + "  (%)\n" \
        + f"   D = {label_a}, h = {label_b}, * = both"


def main() -> None:
    print("running the Figure 3 sweep (20 task sets x 9 ratios x 2 "
          "solvers)...\n")
    result = run_fig3(num_task_sets=20, num_tasks=30, seed=0)

    print(format_fig3(result))
    print()
    print(
        ascii_chart(
            result.ratios,
            result.normalized["dp"],
            result.normalized["heu_oe"],
        )
    )
    print(
        "\nBoth solvers peak at perfect estimation (x = 0) and degrade "
        "in both directions:\nunder-estimated response times "
        "over-promise the server; over-estimated ones\nleave benefit on "
        "the table. The heuristic tracks the exact DP closely."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A federation of servers, one routed knapsack — end to end.

Builds a 4-server heterogeneous topology (edge/cloud/peer kinds, the
last server twice as fast as the first), estimates per-server benefit
functions for a generated task set through each server's wifi link,
and takes one routed MCKP decision: offload-or-not, route and benefit
level for every task under the shared Theorem 3 budget.

Then it walks the degradation ladder: the busiest server's circuit
breaker trips, tasks re-route to the survivors (never back to the dead
server), and after the breaker's half-open probe succeeds the original
decision returns bit-for-bit from the solver cache.

Finally it runs the CI-sized topology sweep — every instance audited
against the reference DP, an exact brute force over server x level
assignments, and the single-server/prune/recovery/federation checks.

Run:  python examples/topology_sweep.py
"""

from collections import Counter

from repro.experiments import TopologySweepConfig, run_topology_sweep
from repro.knapsack import SolverCache
from repro.scenarios import ScenarioSpec, generate_scenario
from repro.sim.rng import RandomStreams
from repro.topology import (
    TopologyDecisionManager,
    estimate_topology_benefits,
    make_topology,
)


def main() -> None:
    tasks = generate_scenario(ScenarioSpec(num_tasks=8), 4)
    topo = make_topology(num_servers=4, spread=1.0, link_quality="wifi")
    print("topology:")
    for server in topo:
        print(f"  {server.server_id}: {server.kind}, "
              f"speed {server.speed:.2f}x, link {server.link.name}")

    benefits, bounds = estimate_topology_benefits(
        tasks, topo, RandomStreams(17), num_samples=64
    )
    router = TopologyDecisionManager(
        "dp", cache=SolverCache(), resolution=2_000
    )
    decision = router.decide(tasks, benefits, bounds)
    print("\nrouted decision:")
    for task_id, (server, r) in sorted(decision.placements.items()):
        where = f"{server} @ R={r * 1000:.0f} ms" if server else "local"
        print(f"  {task_id}: {where}")
    print(f"expected benefit {decision.expected_benefit:.1f}, "
          f"demand rate {decision.total_demand_rate:.3f}, "
          f"feasible={decision.schedulability.feasible}")

    routed = Counter(
        server for server, r in decision.placements.values() if r > 0
    )
    victim = routed.most_common(1)[0][0] if routed else None
    if victim is not None:
        n = router.breaker(victim).min_samples
        router.record_window(0, {victim: (0, n)})  # a window of failures
        degraded = router.decide(tasks, benefits, bounds)
        print(f"\n{victim} died (breaker open): "
              f"benefit {decision.expected_benefit:.1f} -> "
              f"{degraded.expected_benefit:.1f}, "
              f"pruned={degraded.pruned_servers}")

        router.record_window(1, {})                # cooldown: half_open
        router.record_window(2, {victim: (n, 0)})  # clean probe: closed
        recovered = router.decide(tasks, benefits, bounds)
        identical = recovered.placements == decision.placements
        print(f"{victim} recovered: decision restored bit-for-bit: "
              f"{identical} (cache hits {router.cache.hits})")

    print("\nrunning the 6-cell smoke sweep (5-way audit per instance)...")
    report = run_topology_sweep(
        config=TopologySweepConfig(seed=0, num_samples=32), smoke=True
    )
    print(report.format())
    print(f"clean: {report.ok}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Online admission control: tasks joining a running system.

The paper decides offloading once, offline.  This extension example
shows mode changes: new tasks request admission one by one, and the
controller answers — *incrementally* when the newcomer fits next to the
frozen existing decisions, by *re-planning* when the knapsack must be
reshuffled, or with *rejection* when the processor simply cannot hold
the union.

Run:  python examples/online_admission.py
"""

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.odm import OffloadingDecisionManager
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.runtime.admission import AdmissionController


def main() -> None:
    base = TaskSet(
        [
            OffloadableTask(
                task_id="vision",
                wcet=0.25,
                period=1.0,
                setup_time=0.03,
                compensation_time=0.25,
                benefit=BenefitFunction(
                    [BenefitPoint(0.0, 1.0), BenefitPoint(0.3, 6.0)]
                ),
            ),
            Task("control", 0.1, 0.5),
        ]
    )
    decision = OffloadingDecisionManager("dp").decide(base)
    controller = AdmissionController(base, decision)
    print("initial decision:", dict(decision.response_times))
    print(f"demand rate: {decision.total_demand_rate:.3f}\n")

    newcomers = [
        Task("telemetry", 0.05, 1.0),
        OffloadableTask(
            task_id="mapping",
            wcet=0.2,
            period=2.0,
            setup_time=0.02,
            compensation_time=0.2,
            benefit=BenefitFunction(
                [BenefitPoint(0.0, 1.0), BenefitPoint(0.5, 4.0)]
            ),
        ),
        Task("logging", 0.35, 1.0),   # big: forces a re-plan
        Task("diagnostics", 0.5, 1.0),  # too big: rejected
    ]

    for task in newcomers:
        verdict = controller.try_admit(task)
        if not verdict.admitted:
            print(f"{task.task_id:>12}: REJECTED (does not fit at all)")
            continue
        changes = (
            f", re-planned {list(verdict.changed_tasks)}"
            if verdict.changed_tasks
            else ""
        )
        setting = verdict.response_times[task.task_id]
        where = f"offload R={setting * 1000:.0f}ms" if setting else "local"
        print(f"{task.task_id:>12}: admitted [{verdict.mode}] as {where}"
              f"{changes}")
        controller.apply(task, verdict)
        print(f"{'':>14}demand rate now "
              f"{controller.decision.total_demand_rate:.3f}, expected "
              f"benefit {controller.decision.expected_benefit:.1f}")

    print("\nfinal task set:", list(controller.tasks.task_ids))


if __name__ == "__main__":
    main()

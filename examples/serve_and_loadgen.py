#!/usr/bin/env python
"""Drive the online ODM service end to end, in one process.

Starts `ODMService`, serves it over a loopback TCP socket
(`serve_tcp`), then runs the seeded load generator against it through
`ServiceClient` — Poisson request bursts, a mid-run chaos window that
degrades one server (its circuit breaker opens, traffic re-routes,
the breaker re-closes after recovery), and a per-response audit
against the serial reference solver.

Run:  python examples/serve_and_loadgen.py
"""

import asyncio
import socket

from repro.service import (
    BatchPolicy,
    LoadGenConfig,
    ODMService,
    ServiceClient,
    run_loadgen,
    serve_tcp,
)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def main() -> int:
    port = free_port()
    service = ODMService(
        workers=2,
        batch_policy=BatchPolicy(
            max_batch=16, max_wait=0.002, queue_capacity=256
        ),
    )
    serve_task = asyncio.create_task(
        serve_tcp(service, port=port, duration=60.0)
    )
    await asyncio.sleep(0.2)  # let the listener come up

    config = LoadGenConfig(seed=7, bursts=24)
    async with ServiceClient(port=port) as client:
        report = await run_loadgen(
            client.submit,
            config,
            record_outcome=client.record_outcome,
            close_window=client.close_window,
            stats=client.stats,
        )
        await client.shutdown()
    await serve_task

    latency = report.to_dict()["latency"]
    print(f"requests      : {report.requests}")
    print(
        f"admitted      : {report.admitted}"
        f"  rejected: {report.rejected}  shed: {report.shed}"
    )
    print(f"rungs seen    : {sorted(report.rungs_seen)}")
    print(
        f"breaker       : opened={report.breaker_opened}"
        f" reclosed={report.breaker_reclosed}"
    )
    print(
        f"p99 latency   : {latency['batched_p99'] * 1e3:.2f} ms"
        f" (serial baseline {latency['serial_p99'] * 1e3:.2f} ms,"
        f" speedup {latency['p99_speedup']:.2f}x)"
    )
    print(f"anomalies     : {len(report.anomalies)}")
    if not report.ok:
        for anomaly in report.anomalies:
            print(f"  !! {anomaly}")
        return 1
    print("verification  : every admission Theorem-3-certified, "
          "exact answers match the serial reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(asyncio.run(main()))

#!/usr/bin/env python
"""Energy-aware campaign: how hard can we lean on the energy knob?

The paper optimizes benefit alone.  This example sweeps the blended
objective's ``energy_weight`` over a small scenario matrix and shows
the trade the exchange argument promises: as the weight grows, the
decision's average power (``Σ E_i(R_i)/T_i``) falls monotonically and
benefit falls with it — while admissibility never changes, because the
objective only reprices MCKP item values and never touches weights.

Run:  python examples/energy_campaign.py
"""

from repro.core.odm import OffloadingDecisionManager
from repro.scenarios import (
    CampaignMatrix,
    EnergyObjective,
    ScenarioSpec,
    decision_energy_rate,
    energy_axis,
    generate_scenario,
    util_cap_axis,
)


def main() -> None:
    matrix = CampaignMatrix(
        base=ScenarioSpec(num_tasks=6, num_benefit_points=3),
        axes=(
            util_cap_axis((0.6, 0.9)),
            energy_axis(("balanced", "radio_heavy", "cpu_heavy")),
        ),
    )
    cells = matrix.cells()
    print(f"matrix: {len(cells)} cells "
          f"({' x '.join(matrix.axis_names())})\n")

    weights = (0.0, 10.0, 100.0, 1000.0)
    header = "  ".join(f"w={w:<5g}" for w in weights)
    print(f"{'cell':<28} {header}   (mean watts; w=0 is benefit-only)")

    for spec in cells:
        tasks = generate_scenario(spec, 2026)
        baseline = OffloadingDecisionManager().decide(tasks)
        rates = []
        prev = float("inf")
        for weight in weights:
            odm = OffloadingDecisionManager(
                objective=EnergyObjective(
                    benefit_weight=1.0, energy_weight=weight
                )
            )
            decision = odm.decide(tasks)
            # repricing values never loosens Theorem 3
            assert decision.total_demand_rate <= 1.0 + 1e-9
            rate = decision_energy_rate(tasks, decision)
            # heavier energy weight never costs more power than the
            # benefit-only baseline's rate, and the sweep is monotone
            assert rate <= decision_energy_rate(tasks, baseline) + 1e-9
            assert rate <= prev + 1e-9
            prev = rate
            rates.append(rate)
        cols = "  ".join(f"{r:7.3f}" for r in rates)
        print(f"{spec.describe():<28} {cols}")

    print("\nEvery row is non-increasing left to right: the blended")
    print("optimum can trade benefit for energy, never the reverse.")


if __name__ == "__main__":
    main()

"""A5 — the paper's mechanism vs the §2 prior art, head to head.

compensation (this paper) vs greedy offloading [8] vs reservation-based
reliable serving [10], on the case-study workload, busy and idle
servers.  Reproduces the paper's positioning claims as measurements.
"""

import pytest

from repro.experiments.baselines_comparison import (
    format_comparison,
    run_baseline_comparison,
)


@pytest.mark.benchmark(group="ablation-baselines")
def test_bench_baseline_comparison(once):
    comparison = once(run_baseline_comparison, seed=0, horizon=10.0)

    print()
    print(format_comparison(comparison))

    # the paper's mechanism: hard guarantee on any server
    for scenario in comparison.outcomes:
        assert comparison.get(scenario, "compensation").deadline_misses == 0

    # greedy [8]: unsafe exactly when the server is contended
    assert comparison.get("busy", "greedy").deadline_misses > 0
    assert comparison.get("idle", "greedy").deadline_misses == 0

    # reservation [10]: safe everywhere, but wastes the idle server —
    # the compensation mechanism extracts strictly more benefit there
    for scenario in comparison.outcomes:
        assert comparison.get(scenario, "reservation").deadline_misses == 0
    assert (
        comparison.get("idle", "compensation").useful_benefit
        > comparison.get("idle", "reservation").useful_benefit
    )
    assert (
        comparison.get("idle", "compensation").useful_benefit
        > comparison.get("idle", "greedy").useful_benefit
    )

"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (table/figure/ablation)
and prints the same rows/series the paper reports, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the full
reproduction run.  Timing uses single-round pedantic mode — the
artifacts are seconds-long end-to-end experiments, not microbenchmarks.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _runner

"""A4 — deadline-split policy comparison (§5.1's design choice).

The paper assigns sub-job deadlines "proportionally to their
computation times".  This ablation quantifies that choice against three
alternatives on identical random configurations in the contested
schedulability region.
"""

import pytest

from repro.experiments.split_policies import run_split_policy_ablation


@pytest.mark.benchmark(group="ablation-split-policy")
def test_bench_split_policy_comparison(once):
    result = once(
        run_split_policy_ablation,
        num_configurations=30,
        seed=0,
        validate_with_des=True,
    )

    print()
    print("A4: acceptance by deadline-split policy "
          f"({result.configurations} configurations)")
    for policy in sorted(result.accepts):
        print(
            f"{policy:>14}: accepts={result.accepts[policy]:3d} "
            f"({result.acceptance_ratio(policy):6.1%})  "
            f"unsound={result.unsound[policy]}"
        )

    prop = result.accepts["proportional"]
    # the paper's rule dominates the naive alternatives...
    assert prop > result.accepts["equal_slack"]
    assert prop > result.accepts["setup_minimal"]
    # ...and is statistically indistinguishable from the density-sum
    # optimum (neither dominates the other pointwise; the two rules
    # coincide when C1 == C2 and differ mildly otherwise)
    assert abs(prop - result.accepts["sqrt"]) <= 3
    # soundness everywhere
    assert all(v == 0 for v in result.unsound.values())

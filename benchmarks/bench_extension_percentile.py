"""Extension — the §3.2 estimation-percentile trade-off, measured.

"If the response time estimation is too pessimistic, the offloading
option will not be taken.  On the other hand, if the response time
estimation is too optimistic, ... the local compensation is frequently
adopted."  This bench turns that paragraph into numbers: the same
measured distributions, ``r_{i,j}`` chosen at different percentiles,
full decide-and-run at each.
"""

import pytest

from repro.experiments.sensitivity import percentile_tradeoff


@pytest.mark.benchmark(group="extension-percentile")
def test_bench_percentile_tradeoff(once):
    sweep = once(
        percentile_tradeoff,
        percentiles=(50.0, 75.0, 90.0, 99.0),
        scenario="not_busy",
        samples_per_level=60,
        horizon=10.0,
        seed=1,
    )

    print()
    print("estimation percentile trade-off (not_busy server, 10 s):")
    print(f"{'pctl':>5} {'offloaded':>22} {'returned':>9} "
          f"{'compensated':>12} {'benefit':>9} {'misses':>7}")
    for p in sweep:
        offloaded = ",".join(p.offloaded_tasks) or "-"
        print(
            f"{p.percentile:>4.0f} {offloaded:>22} {p.return_rate:>8.0%} "
            f"{p.compensation_rate:>11.0%} {p.realized_benefit:>9.0f} "
            f"{p.deadline_misses:>7}"
        )

    # the guarantee is percentile-independent
    assert all(p.deadline_misses == 0 for p in sweep)
    # pessimism shrinks the offloaded set monotonically
    counts = [len(p.offloaded_tasks) for p in sweep]
    assert counts == sorted(counts, reverse=True)
    # extreme pessimism costs real benefit vs the best setting
    best = max(p.realized_benefit for p in sweep)
    assert sweep[-1].realized_benefit < best

"""A1 — split vs naive sub-job deadlines (paper §5.1's claim).

The paper asserts naive EDF (one deadline for both phases) "performs
poorly".  Under worst-case conditions (WCET execution, dead server) the
split scheduler must never miss on Theorem-3-vetted decisions, while
naive EDF visibly fails at moderate-to-high utilization.
"""

import pytest

from repro.experiments.ablations import run_split_ablation


@pytest.mark.benchmark(group="ablation-split")
def test_bench_split_vs_naive(once):
    result = once(
        run_split_ablation,
        utilizations=(0.3, 0.5, 0.7, 0.9),
        sets_per_level=12,
        seed=0,
    )

    print()
    print("A1: acceptance (no deadline miss) under worst-case conditions")
    print("util    split    naive")
    for i, u in enumerate(result.utilizations):
        print(
            f"{u:4.2f}  {result.acceptance_ratio('split')[i]:7.2%}"
            f"  {result.acceptance_ratio('naive')[i]:7.2%}"
        )

    # split never misses — the Theorem 3 guarantee holds on the DES
    assert all(m == 0 for m in result.missed_sets["split"])
    # naive fails somewhere in the sweep
    assert sum(result.missed_sets["naive"]) > 0
    # and the failure concentrates at high utilization
    assert (
        result.missed_sets["naive"][-1] >= result.missed_sets["naive"][0]
    )

"""Observability overhead: tracing on vs off, measured, persisted.

The contract the observability layer sells is "free when disabled,
under 5% when enabled on a realistic workload".  This benchmark proves
both halves and persists the evidence as ``BENCH_observability.json``:

* **headline overhead** — the resilient windowed runtime (health
  monitor + circuit breaker + per-window QPA/MCKP re-optimisation)
  under a seeded chaos schedule: the production-shaped configuration
  of this repo, and the same workload the trace-invariant suite
  replays.  Budget: ``MAX_ENABLED_OVERHEAD`` (5%).
* **stress overhead** — the bare DES kernel on the contended *busy*
  scenario, where the simulator does only ~40 us of real work per
  trace event.  This is the worst case for a *relative* figure, so it
  is reported (with the absolute us/event cost) under a looser sanity
  bound rather than the headline budget.
* **disabled cost** — an A/A run (disabled vs disabled) bounding the
  measurement floor, plus a microbenchmark of the ``bus.enabled``
  guard itself (the only thing a disabled run pays per candidate
  event).

Methodology: same seed both ways, so the two configurations execute
the identical event sequence; ``time.process_time`` (CPU seconds) so
noisy neighbours on shared hardware cannot charge their preemptions to
either side; ``gc.collect()`` before every timed region so one run's
garbage is never billed to the next; and the *median of per-round
paired ratios* as the estimator — each round times both configurations
back-to-back, which cancels the slow drift that dominates error on
shared machines.

Run standalone (``python benchmarks/bench_trace_overhead.py``) to
regenerate the JSON without asserting, or through pytest
(``pytest benchmarks/bench_trace_overhead.py``) to enforce thresholds.
"""

from __future__ import annotations

import gc
import json
import statistics
import time
import timeit
from pathlib import Path

from repro.faults.chaos import build_profile_schedule
from repro.observability import Observability, TraceBus
from repro.observability.recorder import MetricsRecorder
from repro.runtime.health import ResilientOffloadingSystem
from repro.runtime.system import OffloadingSystem
from repro.vision.tasks import table1_task_set

#: Threshold the enabled configuration must stay under on the headline
#: (production-shaped) workload, end to end.
MAX_ENABLED_OVERHEAD = 0.05

#: Sanity bound for the tracing-dense DES-kernel stress workload.
MAX_STRESS_OVERHEAD = 0.15

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"

HEADLINE = {
    "workload": "ResilientOffloadingSystem, 5 windows x 3 s, busy "
                "scenario, random fault profile (seed 11)",
    "seed": 11,
    "window": 3.0,
    "num_windows": 5,
}
STRESS = {
    "workload": "OffloadingSystem DES kernel, busy scenario, 30 s "
                "horizon (seed 0)",
    "seed": 0,
    "horizon": 30.0,
}


def _timed(run_fn) -> float:
    gc.collect()
    start = time.process_time()
    run_fn()
    return time.process_time() - start


def _headline_run(observability) -> float:
    faults = build_profile_schedule(
        "random",
        horizon=HEADLINE["window"] * HEADLINE["num_windows"],
        seed=HEADLINE["seed"],
    )
    system = ResilientOffloadingSystem(
        table1_task_set(),
        scenario="busy",
        seed=HEADLINE["seed"],
        window=HEADLINE["window"],
        fault_schedule=faults,
        observability=observability,
    )
    return _timed(lambda: system.run(num_windows=HEADLINE["num_windows"]))


def _stress_run(observability) -> float:
    system = OffloadingSystem(
        table1_task_set(),
        scenario="busy",
        seed=STRESS["seed"],
        observability=observability,
    )
    return _timed(lambda: system.run(horizon=STRESS["horizon"]))


def _paired_overhead(run_fn, make_enabled, rounds: int) -> dict:
    """Median of per-round (enabled - disabled)/disabled ratios."""
    # warm-up both configurations (lazy imports, allocator state)
    run_fn(Observability.disabled())
    run_fn(make_enabled())
    ratios, disabled_s, enabled_s = [], [], []
    for _ in range(rounds):
        dis = run_fn(Observability.disabled())
        en = run_fn(make_enabled())
        disabled_s.append(dis)
        enabled_s.append(en)
        ratios.append((en - dis) / dis)
    return {
        "rounds": rounds,
        "disabled_best_s": min(disabled_s),
        "disabled_median_s": statistics.median(disabled_s),
        "enabled_best_s": min(enabled_s),
        "enabled_median_s": statistics.median(enabled_s),
        "overhead_paired_median": statistics.median(ratios),
        "overhead_min_estimate": (
            (min(enabled_s) - min(disabled_s)) / min(disabled_s)
        ),
    }


def _aa_noise(run_fn, rounds: int) -> float:
    """A/A paired-median: disabled vs disabled, bounds the noise floor."""
    run_fn(Observability.disabled())
    ratios = []
    for _ in range(rounds):
        first = run_fn(Observability.disabled())
        second = run_fn(Observability.disabled())
        ratios.append((second - first) / first)
    return statistics.median(ratios)


def _micro(fn, number: int = 50_000) -> float:
    """Nanoseconds per call."""
    return timeit.timeit(fn, number=number) / number * 1e9


def measure(rounds: int = 24) -> dict:
    headline = _paired_overhead(
        _headline_run,
        lambda: Observability.enabled(capacity=None),
        rounds,
    )
    stress = _paired_overhead(_stress_run, Observability.enabled, rounds)
    aa = _aa_noise(_stress_run, max(4, rounds // 2))

    # one instrumented run for event counts + the profiler snapshot
    obs = Observability.enabled()
    OffloadingSystem(
        table1_task_set(),
        scenario="busy",
        seed=STRESS["seed"],
        observability=obs,
    ).run(horizon=STRESS["horizon"])
    events = obs.bus.emitted
    stress_extra_s = stress["enabled_best_s"] - stress["disabled_best_s"]
    us_per_event = max(0.0, stress_extra_s) / events * 1e6

    # microbenchmarks: the disabled guard and the emit hot path
    null_bus = TraceBus(capacity=0, enabled=False)

    def guarded():
        if null_bus.enabled:
            null_bus.emit("x", 1.0, task="t")

    bare_bus = TraceBus(capacity=65536)
    folded_bus = TraceBus(capacity=65536)
    MetricsRecorder().attach(folded_bus)

    guard_ns = _micro(guarded)
    emit_ns = _micro(
        lambda: bare_bus.emit(
            "subjob.start", 1.0, task="t", job=1, phase="local"
        )
    )
    emit_fold_ns = _micro(
        lambda: folded_bus.emit(
            "subjob.start", 1.0, task="t", job=1, phase="local"
        )
    )

    return {
        "benchmark": "trace_overhead",
        "estimator": "median of per-round paired process_time ratios "
                     "(same-seed runs are deterministic; gc.collect "
                     "before each timed region)",
        "headline": dict(HEADLINE, **headline),
        "stress": dict(
            STRESS,
            **stress,
            events_per_run=events,
            us_per_event=us_per_event,
        ),
        "overhead_enabled": headline["overhead_paired_median"],
        "overhead_disabled_aa": aa,
        "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
        "max_stress_overhead": MAX_STRESS_OVERHEAD,
        "within_budget": (
            headline["overhead_paired_median"] < MAX_ENABLED_OVERHEAD
        ),
        "guard_ns_per_check": guard_ns,
        "emit_ns_per_event": emit_ns,
        "emit_plus_fold_ns_per_event": emit_fold_ns,
        "profile": (
            obs.profiler.to_dict() if obs.profiler is not None else {}
        ),
    }


def write_report(report: dict, path: Path = REPORT_PATH) -> Path:
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def _summarize(report: dict) -> str:
    head = report["headline"]
    stress = report["stress"]
    return (
        f"observability overhead (paired-median estimator):\n"
        f"  headline (resilient windowed runtime):\n"
        f"    disabled {head['disabled_best_s'] * 1000:7.2f} ms (best)  "
        f"enabled {head['enabled_best_s'] * 1000:7.2f} ms (best)\n"
        f"    overhead {head['overhead_paired_median']:+7.2%}  "
        f"(budget {report['max_enabled_overhead']:.0%})\n"
        f"  stress (DES kernel, {stress['events_per_run']} events):\n"
        f"    overhead {stress['overhead_paired_median']:+7.2%}  "
        f"(~{stress['us_per_event']:.1f} us/event, sanity bound "
        f"{report['max_stress_overhead']:.0%})\n"
        f"  disabled A/A {report['overhead_disabled_aa']:+7.2%}\n"
        f"  guard {report['guard_ns_per_check']:.0f} ns/check, emit "
        f"{report['emit_ns_per_event']:.0f} ns, emit+fold "
        f"{report['emit_plus_fold_ns_per_event']:.0f} ns"
    )


def test_bench_trace_overhead():
    report = measure()
    path = write_report(report)
    print()
    print(_summarize(report))
    print(f"wrote {path}")

    # enabled: the headline budget on the production-shaped runtime
    assert report["overhead_enabled"] < MAX_ENABLED_OVERHEAD, (
        f"enabled tracing costs {report['overhead_enabled']:.1%} "
        f"(budget {MAX_ENABLED_OVERHEAD:.0%})"
    )
    # the tracing-dense kernel stays within its sanity bound
    assert (
        report["stress"]["overhead_paired_median"] < MAX_STRESS_OVERHEAD
    )
    # disabled: indistinguishable from not having the layer at all —
    # the A/A delta bounds measurement noise, the guard bounds real cost
    assert abs(report["overhead_disabled_aa"]) < 0.04
    assert report["guard_ns_per_check"] < 1_000
    # sanity: the run actually traced something
    assert report["stress"]["events_per_run"] > 100


if __name__ == "__main__":
    result = measure()
    print(_summarize(result))
    print(f"wrote {write_report(result)}")
    if not result["within_budget"]:
        print("WARNING: enabled overhead exceeded budget on this machine")

"""A2 — MCKP solver trade-offs (paper §5.2 adopts DP + HEU-OE).

Compares solution quality (vs the exact branch-and-bound optimum) and
runtime of the pseudo-polynomial DP, the HEU-OE heuristic and
branch-and-bound on random instances, plus timing on the paper's two
actual instance families (4-task case study, 30-task simulation).
"""

import numpy as np
import pytest

from repro.core.odm import build_mckp
from repro.experiments.ablations import run_solver_ablation
from repro.knapsack import solve_dp, solve_heu_oe
from repro.vision.tasks import table1_task_set
from repro.workloads.generator import paper_simulation_task_set


@pytest.mark.benchmark(group="ablation-solvers")
def test_bench_solver_quality(once):
    result = once(
        run_solver_ablation,
        num_instances=15,
        num_classes=12,
        items_per_class=6,
        seed=0,
    )

    print()
    print("A2: MCKP solver quality (vs exact) and mean runtime")
    for name in result.solvers:
        print(
            f"{name:>12}: quality={result.quality[name]:.4f}  "
            f"runtime={result.runtime_seconds[name] * 1000:8.2f} ms"
        )

    assert result.quality["branch_bound"] == pytest.approx(1.0)
    assert result.quality["dp"] >= 0.999  # quantization sliver at most
    assert result.quality["heu_oe"] >= 0.93  # near-optimal on average


@pytest.mark.benchmark(group="ablation-solvers")
def test_bench_dp_on_paper_simulation_instance(benchmark):
    """DP runtime on the actual 30-task §6.2 instance."""
    tasks = paper_simulation_task_set(np.random.default_rng(0))
    instance = build_mckp(tasks)
    selection = benchmark(solve_dp, instance)
    assert selection is not None and selection.is_feasible
    print(
        f"\n30-task instance: {instance.num_items} items, "
        f"DP value={selection.total_value:.3f}"
    )


@pytest.mark.benchmark(group="ablation-solvers")
def test_bench_heu_on_paper_simulation_instance(benchmark):
    tasks = paper_simulation_task_set(np.random.default_rng(0))
    instance = build_mckp(tasks)
    selection = benchmark(solve_heu_oe, instance)
    assert selection is not None and selection.is_feasible


@pytest.mark.benchmark(group="ablation-solvers")
def test_bench_dp_on_case_study_instance(benchmark):
    instance = build_mckp(table1_task_set())
    selection = benchmark(solve_dp, instance)
    assert selection is not None

"""E3 — the simulation study of Figure 3 (paper §6.2).

30 random tasks per set, estimation accuracy ratio swept −40 %…+40 %,
DP vs HEU-OE, normalized to DP at perfect estimation.

Reproduction contract:
* peak at x = 0 (normalized 1.0 by construction for DP);
* monotone-ish degradation away from 0 on both sides;
* DP ≥ HEU-OE at perfect estimation; HEU-OE within a few percent
  everywhere.
"""

import pytest

from repro.experiments.fig3 import format_fig3, run_fig3, run_fig3_des


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_accuracy_sweep(once):
    result = once(run_fig3, num_task_sets=20, num_tasks=30, seed=0)

    print()
    print(format_fig3(result))

    dp = result.normalized["dp"]
    heu = result.normalized["heu_oe"]
    zero = result.ratios.index(0.0)

    assert result.peak_ratio("dp") == 0.0
    assert dp[zero] == pytest.approx(1.0)
    assert dp[zero] >= heu[zero] - 1e-9

    # strict degradation toward the extremes (paper's curve shape)
    assert dp[0] < dp[zero] and dp[-1] < dp[zero]
    assert dp[0] <= dp[1] + 0.02  # -40% no better than -30%
    assert dp[-1] <= dp[-2] + 0.02  # +40% no better than +30%

    # the heuristic tracks the exact solver closely
    for d, h in zip(dp, heu):
        assert abs(d - h) < 0.05


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_des_validated(once):
    """The same sweep, but *measured* on the discrete-event simulation:
    decisions run against a server whose latency distribution is the
    true probability staircase, and the score counts actual timely
    returns.  The analytic curve's shape must survive contact with the
    simulator (peak at 0, degradation both ways, zero misses)."""
    result = once(
        run_fig3_des,
        accuracy_ratios=(-0.4, -0.2, 0.0, 0.2, 0.4),
        num_task_sets=5,
        horizon=60.0,
        seed=0,
    )

    print()
    print(format_fig3(result))

    des = result.normalized["dp_des"]
    zero = result.ratios.index(0.0)
    assert des[zero] == pytest.approx(1.0)
    # measured degradation on both sides (binomial noise tolerated)
    assert des[0] < 0.98
    assert des[-1] < 0.98

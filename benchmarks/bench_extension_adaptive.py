"""Extension — adaptive re-estimation recovery curve.

Not a paper artifact: quantifies the architecture's feedback loop
(DESIGN.md §5).  Starting from response-time beliefs 2.5x too
optimistic on the not-busy server, the windowed observe-and-correct
loop must recover the server return rate while never missing a
deadline.
"""

from dataclasses import replace

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import TaskSet
from repro.runtime.adaptive import AdaptiveOffloadingSystem
from repro.vision.tasks import table1_task_set


def _optimistic(factor: float) -> TaskSet:
    beliefs = TaskSet()
    for task in table1_task_set():
        points = [task.benefit.points[0]] + [
            BenefitPoint(p.response_time * factor, p.benefit,
                         p.setup_time, p.compensation_time, p.label)
            for p in task.benefit.points[1:]
        ]
        beliefs.add(replace(task, benefit=BenefitFunction(points)))
    return beliefs


@pytest.mark.benchmark(group="extension-adaptive")
def test_bench_adaptive_recovery(once):
    system = AdaptiveOffloadingSystem(
        _optimistic(1 / 2.5), scenario="not_busy", seed=3, window=10.0
    )
    report = once(system.run, num_windows=6)

    print()
    print("adaptive recovery (beliefs initially 2.5x optimistic):")
    print(f"{'window':>6} {'returned':>9} {'compensated':>12} "
          f"{'benefit':>9} {'misses':>7}")
    for w in report.windows:
        print(
            f"{w.window:>6} {w.return_rate:>8.0%} "
            f"{w.compensation_rate:>11.0%} {w.realized_benefit:>9.0f} "
            f"{w.deadline_misses:>7}"
        )

    assert all(w.deadline_misses == 0 for w in report.windows)
    first, last = report.windows[0], report.windows[-1]
    assert last.return_rate > first.return_rate
    assert last.realized_benefit > first.realized_benefit
    assert last.compensation_rate < first.compensation_rate

"""E1 — regenerate Table 1 (paper §6.1.2).

Prints measured-vs-published benefit rows for the four vision tasks.
The reproduction contract: response times increase with level, PSNR
increases with level, the full-resolution level is the capped 99 dB,
and measured response times share the published order of magnitude.
"""

import pytest

from repro.experiments.table1 import format_table1, regenerate_table1


@pytest.mark.benchmark(group="table1")
def test_bench_table1_regeneration(once):
    result = once(
        regenerate_table1, scenario="idle", samples_per_level=60, seed=0
    )

    print()
    print(format_table1(result))

    for task_id, rows in result.rows.items():
        rs = [r for r, _ in rows]
        gs = [g for _, g in rows]
        assert rs == sorted(rs), f"{task_id}: response times not monotone"
        assert gs == sorted(gs), f"{task_id}: benefits not monotone"
        assert gs[-1] == pytest.approx(99.0), f"{task_id}: top level not 99"
        assert all(0.01 < r < 5.0 for r in rs if r > 0)


@pytest.mark.benchmark(group="table1")
def test_bench_table1_busy_scenario_shifts_right(once):
    """On a contended server the measured r_{i,j} grow — the estimator
    sees and reports the contention."""
    from repro.experiments.table1 import regenerate_table1 as regen

    busy = once(regen, scenario="busy", samples_per_level=40, seed=0)
    idle = regen(scenario="idle", samples_per_level=40, seed=0)

    slower = 0
    total = 0
    for task_id in busy.rows:
        for (rb, _), (ri, _) in zip(busy.rows[task_id][1:],
                                    idle.rows[task_id][1:]):
            total += 1
            if rb > ri:
                slower += 1
    print(f"\nbusy-vs-idle: {slower}/{total} levels measurably slower")
    assert slower / total > 0.6

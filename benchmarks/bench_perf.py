"""Hot-path speedups, measured and persisted as ``BENCH_perf.json``.

Thin driver over :mod:`repro.perf.bench` (the CLI's ``repro bench``
uses the same engine).  Two paired old-vs-new comparisons — the sparse
MCKP DP against the reference row-masking DP, and the refactored
Figure 3 sweep against the seed's serial pipeline — plus the DP
differential check, which must pass for the process to exit 0.

Run standalone to regenerate the JSON::

    python benchmarks/bench_perf.py [--quick] [--workers N] [--out PATH]

or through pytest (``pytest benchmarks/bench_perf.py``), which uses the
quick sizing and additionally asserts the differential gate.  Speedup
targets are asserted only in the full (non-quick) standalone run;
pytest/CI runs warn instead, because shared runners make wall-clock
ratios noisy while correctness is exact everywhere.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf.bench import format_bench, run_bench

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def write_report(report, path: Path = REPORT_PATH) -> Path:
    path.write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


def test_bench_perf():
    report = run_bench(quick=True)
    print()
    print(format_bench(report))
    # correctness is exact on any machine: both DP paths and the cache
    # must agree on every optimum
    assert report.differential_ok, report.differential
    # speed is advisory under pytest (CI runners are noisy); still,
    # the new DP should never be slower than the reference
    assert report.dp["speedup_paired_median"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizing: fewer instances and rounds",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the sweep side (default 8)",
    )
    parser.add_argument(
        "--out", default=str(REPORT_PATH),
        help=f"report path (default {REPORT_PATH.name})",
    )
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick, workers=args.workers)
    print(format_bench(report))
    path = write_report(report, Path(args.out))
    print(f"wrote {path}")

    if not report.differential_ok:
        print("FAIL: DP differential check regressed", file=sys.stderr)
        return 1
    if not report.targets_met:
        message = "speedup targets not met on this machine"
        if args.quick:
            print(f"WARNING: {message} (quick sizing)", file=sys.stderr)
        else:
            print(f"FAIL: {message}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

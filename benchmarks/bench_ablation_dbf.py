"""A3 — schedulability-test pessimism (Theorem 3 vs exact demand).

Counts, over random offloading configurations, how often the paper's
linear Theorem 3 bound and the exact (step-dbf, line-capped) processor
demand test accept — and DES-validates that every exact-accepted
configuration indeed meets all deadlines under worst-case conditions.
"""

import pytest

from repro.experiments.ablations import run_pessimism_ablation


@pytest.mark.benchmark(group="ablation-dbf")
def test_bench_test_pessimism(once):
    result = once(
        run_pessimism_ablation,
        num_configurations=40,
        num_tasks=5,
        utilization_range=(0.5, 0.95),
        validate_with_des=True,
        seed=0,
    )

    print()
    print("A3: schedulability-test pessimism")
    print(f"configurations:      {result.configurations}")
    print(f"Theorem 3 accepts:   {result.theorem3_accepts}")
    print(f"exact dbf accepts:   {result.exact_accepts}")
    print(f"exact-only accepts:  {result.exact_only}")
    print(f"unsound (DES miss):  {result.unsound}")

    # dominance: exact accepts a superset of Theorem 3's acceptances
    assert result.exact_accepts >= result.theorem3_accepts
    # soundness: no exact-accepted configuration missed a deadline
    assert result.unsound == 0

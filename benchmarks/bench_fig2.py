"""E2 — the case study of Figure 2 (paper §6.1.3).

Regenerates the full figure: 24 weight permutations ("Work Set" axis) ×
3 GPU-server scenarios, 10 s of simulated execution each, DP-optimal
offloading decisions, benefits normalized to the no-results worst case.

Reproduction contract (the paper's shapes):
* every normalized value ≥ 1 (compensation floors the benefit at the
  local quality);
* idle ≥ not_busy ≥ busy on average;
* zero deadline misses across all 72 runs — the hard guarantee.
"""

import pytest

from repro.experiments.fig2 import format_fig2, run_fig2


@pytest.mark.benchmark(group="fig2")
def test_bench_fig2_case_study(once):
    result = once(run_fig2, horizon=10.0, solver="dp", seed=0)

    print()
    print(format_fig2(result))

    for scenario in ("busy", "not_busy", "idle"):
        series = result.series(scenario)
        assert len(series) == 24
        assert all(v >= 1.0 - 1e-9 for v in series)

    assert (
        result.mean_normalized("idle")
        >= result.mean_normalized("not_busy")
        >= result.mean_normalized("busy")
    )
    assert result.mean_normalized("idle") > 1.5  # offloading clearly pays
    assert result.total_misses == 0


@pytest.mark.benchmark(group="fig2")
def test_bench_fig2_dp_is_optimal_on_small_instances(once):
    """§6.1.3: 'when the number of tasks is small, the dynamic
    programming can always find the optimal results' — cross-check the
    DP against brute force on all 24 case-study instances."""
    from repro.core.odm import OffloadingDecisionManager
    from repro.experiments.fig2 import WEIGHT_PERMUTATIONS
    from repro.vision.tasks import table1_task_set

    def verify_all():
        dp = OffloadingDecisionManager("dp")
        exact = OffloadingDecisionManager("brute_force")
        worst_gap = 0.0
        for weights in WEIGHT_PERMUTATIONS:
            tasks = table1_task_set(weights=weights)
            gap = (
                exact.decide(tasks).expected_benefit
                - dp.decide(tasks).expected_benefit
            )
            worst_gap = max(worst_gap, gap)
        return worst_gap

    worst_gap = once(verify_all)
    print(f"\nworst DP-vs-exact gap over 24 instances: {worst_gap:.3g}")
    assert worst_gap <= 1e-6

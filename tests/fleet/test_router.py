"""FleetRouter: failover, timeouts, hedging, dedup, probes."""

import asyncio

import numpy as np
import pytest

from repro.faults import ReplicaProcess
from repro.fleet import (
    FleetRouter,
    FleetUnavailable,
    ReplicaSpec,
    RouterConfig,
)
from repro.service import AdmissionRequest, BatchPolicy, ODMService
from repro.workloads.generator import random_offloading_task_set


def make_request(request_id="r1", seed=1):
    tasks = random_offloading_task_set(
        np.random.default_rng(seed), num_tasks=3, total_utilization=0.5
    )
    return AdmissionRequest(
        request_id=request_id,
        tasks=tasks,
        server_estimates={"edge": 1.0},
    )


def make_replica(replica_id):
    return ReplicaProcess(
        replica_id,
        lambda: ODMService(
            workers=1,
            replica_id=replica_id,
            batch_policy=BatchPolicy(
                max_batch=8, max_wait=0.001, queue_capacity=32
            ),
        ),
    )


async def fleet(n=2):
    procs = {}
    for i in range(n):
        proc = make_replica(f"replica-{i}")
        await proc.start()
        procs[proc.replica_id] = proc
    specs = [
        ReplicaSpec(rid, proc.host, proc.port)
        for rid, proc in sorted(procs.items())
    ]
    return procs, specs


async def stop_all(procs):
    for proc in procs.values():
        await proc.stop()


class TestRouterConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="policy"):
            RouterConfig(policy="round_robin")
        with pytest.raises(ValueError, match="max_attempts"):
            RouterConfig(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RouterConfig(backoff_base=0.5, backoff_max=0.1)
        with pytest.raises(ValueError, match="jitter"):
            RouterConfig(jitter=1.5)
        with pytest.raises(ValueError, match="hedge_after"):
            RouterConfig(hedge_after=0.0)
        with pytest.raises(ValueError, match="pressure_limit"):
            RouterConfig(pressure_limit=0.0)


class TestFailover:
    def test_submit_routes_and_answers(self):
        async def scenario():
            procs, specs = await fleet(2)
            try:
                async with FleetRouter(
                    specs, RouterConfig(probe_interval=None)
                ) as router:
                    response = await router.submit(make_request())
                    return response, router.stats()
            finally:
                await stop_all(procs)

        response, stats = asyncio.run(scenario())
        assert response.admitted
        assert response.replica in ("replica-0", "replica-1")
        assert stats["requests"] == 1
        assert stats["failovers"] == 0

    def test_dead_replica_fails_over(self):
        async def scenario():
            procs, specs = await fleet(2)
            try:
                # route by hash so we can kill exactly the owner
                config = RouterConfig(
                    policy="consistent_hash", probe_interval=None
                )
                async with FleetRouter(specs, config) as router:
                    request = make_request("victim-key")
                    owner = router.pick(request.request_id)
                    await procs[owner].kill()
                    response = await router.submit(request)
                    stats = router.stats()
                    return owner, response, stats
            finally:
                await stop_all(procs)

        owner, response, stats = asyncio.run(scenario())
        assert response.admitted
        assert response.replica != owner
        assert stats["failovers"] >= 1
        assert stats["replicas"][owner]["state"] == "down"

    def test_whole_fleet_down_raises_fleet_unavailable(self):
        async def scenario():
            procs, specs = await fleet(2)
            try:
                config = RouterConfig(
                    probe_interval=None, max_attempts=2
                )
                async with FleetRouter(specs, config) as router:
                    for proc in procs.values():
                        await proc.kill()
                    with pytest.raises(FleetUnavailable):
                        await router.submit(make_request())
                    return router.stats()
            finally:
                await stop_all(procs)

        stats = asyncio.run(scenario())
        assert stats["unrouted"] == 1

    def test_straggler_times_out_and_fails_over(self):
        async def scenario():
            procs, specs = await fleet(2)
            try:
                config = RouterConfig(
                    policy="consistent_hash",
                    probe_interval=None,
                    request_timeout=0.2,
                )
                async with FleetRouter(specs, config) as router:
                    request = make_request("slow-key")
                    owner = router.pick(request.request_id)
                    original = procs[owner].service.shard_solver.solve_batch

                    def stall(entries):
                        import time

                        time.sleep(1.0)
                        return original(entries)

                    procs[owner].service.shard_solver.solve_batch = stall
                    response = await router.submit(request)
                    return owner, response, router.stats()
            finally:
                await stop_all(procs)

        owner, response, stats = asyncio.run(scenario())
        assert response.admitted
        assert response.replica != owner
        assert stats["retries"] >= 1

    def test_probe_detects_recovery(self):
        async def scenario():
            procs, specs = await fleet(2)
            try:
                config = RouterConfig(probe_interval=None)
                async with FleetRouter(specs, config) as router:
                    victim = "replica-0"
                    await procs[victim].kill()
                    await router.probe()
                    down = router.membership.status(victim).state
                    await procs[victim].restart()
                    await router.probe()
                    up = router.membership.status(victim).state
                    return down, up, router.stats()
            finally:
                await stop_all(procs)

        down, up, stats = asyncio.run(scenario())
        assert down == "down"
        assert up == "up"
        times = stats["recovery_times"]["replica-0"]
        assert len(times) == 1
        assert times[0] >= 0.0

    def test_probe_fills_gossip_view(self):
        async def scenario():
            procs, specs = await fleet(2)
            try:
                procs["replica-1"].service.record_outcome(
                    "flaky", False, 1.0
                )
                for _ in range(4):
                    procs["replica-1"].service.record_outcome(
                        "flaky", False, 1.0
                    )
                procs["replica-1"].service.close_health_window()
                async with FleetRouter(
                    specs, RouterConfig(probe_interval=None)
                ) as router:
                    await router.probe()
                    return router.stats()
            finally:
                await stop_all(procs)

        stats = asyncio.run(scenario())
        assert stats["fleet_breakers"] == {"flaky": "open"}


class TestExactlyOnce:
    def test_retried_id_is_deduplicated_by_the_replica(self):
        async def scenario():
            procs, specs = await fleet(1)
            try:
                async with FleetRouter(
                    specs, RouterConfig(probe_interval=None)
                ) as router:
                    request = make_request("same-id")
                    first = await router.submit(request)
                    second = await router.submit(request)
                    stats = procs["replica-0"].service.stats()
                    return first, second, stats, router
            finally:
                await stop_all(procs)

        first, second, stats, router = asyncio.run(scenario())
        assert first.to_dict() == second.to_dict()
        assert stats["dedup_hits"] == 1
        assert stats["admitted"] == 1  # decided exactly once
        assert router.duplicate_deliveries == 0

    def test_hedged_request_returns_one_decision(self):
        async def scenario():
            procs, specs = await fleet(2)
            try:
                config = RouterConfig(
                    policy="consistent_hash",
                    probe_interval=None,
                    hedge_after=0.05,
                    request_timeout=2.0,
                )
                async with FleetRouter(specs, config) as router:
                    request = make_request("hedged-key")
                    owner = router.pick(request.request_id)
                    original = procs[owner].service.shard_solver.solve_batch

                    def slow(entries):
                        import time

                        time.sleep(0.4)
                        return original(entries)

                    procs[owner].service.shard_solver.solve_batch = slow
                    response = await router.submit(request)
                    return owner, response, router.stats()
            finally:
                await stop_all(procs)

        owner, response, stats = asyncio.run(scenario())
        assert response.admitted
        # the hedge (on the fast replica) won the race
        assert response.replica != owner
        assert stats["hedges"] == 1
        assert stats["hedge_wins"] == 1
        assert stats["duplicate_deliveries"] == 0


class TestRoutingPolicies:
    def test_consistent_hash_is_sticky(self):
        async def scenario():
            procs, specs = await fleet(3)
            try:
                config = RouterConfig(
                    policy="consistent_hash", probe_interval=None
                )
                async with FleetRouter(specs, config) as router:
                    owners = {
                        router.pick(f"req-{i}") for i in range(50)
                    }
                    sticky = all(
                        router.pick("req-7") == router.pick("req-7")
                        for _ in range(5)
                    )
                    return owners, sticky
            finally:
                await stop_all(procs)

        owners, sticky = asyncio.run(scenario())
        assert sticky
        assert len(owners) >= 2  # keys spread over the fleet

    def test_least_loaded_avoids_pressured_replicas(self):
        async def scenario():
            procs, specs = await fleet(2)
            try:
                async with FleetRouter(
                    specs, RouterConfig(probe_interval=None)
                ) as router:
                    # replica-0 reports a nearly full queue via beacon
                    router.membership.update_beacon(
                        "replica-0",
                        {"seq": 1, "queue_depth": 31,
                         "queue_capacity": 32},
                    )
                    return [router.pick(f"req-{i}") for i in range(5)]
            finally:
                await stop_all(procs)

        picks = asyncio.run(scenario())
        assert picks == ["replica-1"] * 5

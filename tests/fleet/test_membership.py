"""Fleet membership: failure detector, recovery times, hash ring."""

import pytest

from repro.fleet import FleetMembership, HashRing, ReplicaSpec


def specs(n=3):
    return [
        ReplicaSpec(f"replica-{i}", "127.0.0.1", 9000 + i)
        for i in range(n)
    ]


class TestReplicaSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="replica_id"):
            ReplicaSpec("", "127.0.0.1", 9000)
        with pytest.raises(ValueError, match="port"):
            ReplicaSpec("r", "127.0.0.1", 0)


class TestFleetMembership:
    def test_everyone_starts_up(self):
        membership = FleetMembership(specs())
        assert membership.ids() == [
            "replica-0", "replica-1", "replica-2",
        ]
        assert membership.healthy() == membership.ids()
        assert "replica-1" in membership

    def test_fatal_failure_downs_immediately(self):
        membership = FleetMembership(specs())
        state = membership.mark_failure("replica-1", 1.0, fatal=True)
        assert state == "down"
        assert membership.healthy() == ["replica-0", "replica-2"]

    def test_stragglers_need_consecutive_strikes(self):
        membership = FleetMembership(specs(), down_threshold=2)
        assert membership.mark_failure("replica-1", 1.0) == "suspect"
        # suspect replicas still route (a one-off straggle is not death)
        assert "replica-1" in membership.healthy()
        assert membership.mark_failure("replica-1", 2.0) == "down"
        assert "replica-1" not in membership.healthy()

    def test_success_resets_the_strike_count(self):
        membership = FleetMembership(specs(), down_threshold=2)
        membership.mark_failure("replica-1", 1.0)
        membership.mark_success("replica-1", 2.0)
        # strikes do not accumulate across recoveries
        assert membership.mark_failure("replica-1", 3.0) == "suspect"

    def test_recovery_time_is_measured(self):
        membership = FleetMembership(specs())
        membership.mark_failure("replica-1", 10.0, fatal=True)
        recovered = membership.mark_success("replica-1", 12.5)
        assert recovered == pytest.approx(2.5)
        assert membership.recovery_times() == {
            "replica-1": [pytest.approx(2.5)]
        }
        # a plain success with no open outage measures nothing
        assert membership.mark_success("replica-1", 13.0) is None

    def test_beacons_merge_by_sequence(self):
        membership = FleetMembership(specs())
        fresh = {"seq": 5, "queue_depth": 16, "queue_capacity": 32}
        assert membership.update_beacon("replica-0", fresh)
        stale = {"seq": 4, "queue_depth": 0, "queue_capacity": 32}
        assert not membership.update_beacon("replica-0", stale)
        assert membership.status("replica-0").occupancy == pytest.approx(
            0.5
        )

    def test_transitions_are_logged(self):
        membership = FleetMembership(specs())
        membership.mark_failure("replica-2", 1.0, fatal=True)
        membership.mark_success("replica-2", 2.0)
        assert [
            (rid, old, new)
            for _t, rid, old, new in membership.transitions
        ] == [
            ("replica-2", "up", "down"),
            ("replica-2", "down", "up"),
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetMembership([])
        with pytest.raises(ValueError, match="duplicate"):
            FleetMembership(
                [
                    ReplicaSpec("r", "127.0.0.1", 9000),
                    ReplicaSpec("r", "127.0.0.1", 9001),
                ]
            )


class TestHashRing:
    def test_routing_is_deterministic_and_total(self):
        nodes = ["replica-0", "replica-1", "replica-2"]
        ring = HashRing(nodes)
        owners = {f"req-{i:04d}": ring.route(f"req-{i:04d}")
                  for i in range(200)}
        again = HashRing(nodes)
        assert owners == {
            key: again.route(key) for key in owners
        }
        # all nodes get some share
        assert set(owners.values()) == set(nodes)

    def test_dead_node_only_moves_its_own_keys(self):
        nodes = ["replica-0", "replica-1", "replica-2"]
        ring = HashRing(nodes)
        keys = [f"req-{i:04d}" for i in range(300)]
        before = {key: ring.route(key) for key in keys}
        alive = ["replica-0", "replica-2"]
        after = {key: ring.route(key, alive=alive) for key in keys}
        for key in keys:
            if before[key] != "replica-1":
                assert after[key] == before[key]
            else:
                assert after[key] in alive

    def test_nothing_alive_routes_nowhere(self):
        ring = HashRing(["replica-0"])
        assert ring.route("key", alive=[]) is None
        assert ring.route("key", alive=["replica-0"]) == "replica-0"

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            HashRing([])
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(["a"], vnodes=0)

"""End-to-end fleet chaos campaign: replica death, gossip, auditing."""

import asyncio

import pytest

from repro.fleet import FleetCampaignConfig, run_fleet_campaign
from repro.service import LoadGenConfig


def small_config(**overrides):
    # bursts=12 / window_every=2 aligns a window close over the two
    # fully-degraded bursts, so the campaign exercises a breaker trip
    load = LoadGenConfig(
        seed=7,
        bursts=12,
        mean_burst_size=4.0,
        unique_sets=4,
        num_tasks=4,
        window_every=2,
    )
    defaults = dict(seed=7, load=load, pacing=0.005)
    defaults.update(overrides)
    return FleetCampaignConfig(**defaults)


class TestFleetCampaignConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="replicas"):
            FleetCampaignConfig(replicas=0)
        with pytest.raises(ValueError, match="kill_replica"):
            FleetCampaignConfig(replicas=1)  # default victim not in fleet
        with pytest.raises(ValueError, match="observer"):
            FleetCampaignConfig(observer="replica-9")
        with pytest.raises(ValueError, match="kill_replica"):
            FleetCampaignConfig(
                kill_replica="replica-0", observer="replica-0"
            )
        with pytest.raises(ValueError, match="fraction"):
            FleetCampaignConfig(
                kill_at_fraction=0.8, restart_at_fraction=0.2
            )
        with pytest.raises(ValueError, match="loss"):
            FleetCampaignConfig(link_loss_probability=1.5)

    def test_chaos_schedule_kills_then_restarts(self):
        config = small_config()
        schedule = config.chaos_schedule()
        actions = list(schedule)
        assert [a.action for a in actions] == ["kill", "restart"]
        assert actions[0].target == config.kill_replica
        assert actions[0].at < actions[1].at <= config.horizon


class TestFleetCampaign:
    def test_campaign_survives_a_replica_death(self):
        report = asyncio.run(run_fleet_campaign(small_config()))

        # hard guarantees: every admitted answer audits clean against
        # the serial reference solver, and no id got two decisions
        assert report.ok
        assert report.anomaly_count == 0
        assert report.duplicate_deliveries == 0
        # chaos actually happened: one kill, one restart, both executed
        assert [e["action"] for e in report.chaos_events] == [
            "kill",
            "restart",
        ]
        # no request was lost to the dead replica — failover absorbed it
        assert report.unrouted == 0
        assert report.requests > 0
        assert report.admitted + report.rejected + report.shed == (
            report.requests
        )
        # load spread beyond a single replica
        assert len(report.served_by) >= 2
        assert sum(report.served_by.values()) == report.requests

    def test_gossip_propagates_the_degraded_server(self):
        report = asyncio.run(run_fleet_campaign(small_config()))

        # the observer replica saw the degraded server's failures and
        # tripped (then, post-chaos, re-closed) its breaker locally ...
        assert report.breaker_opened
        assert report.breaker_reclosed
        # ... and at least one *other* replica tripped purely on
        # gossiped evidence — it never received outcomes directly
        assert sum(report.remote_trips.values()) >= 1

    def test_recovery_is_measured(self):
        report = asyncio.run(run_fleet_campaign(small_config()))

        times = report.recovery_times.get("replica-1", [])
        assert len(times) >= 1
        assert all(t >= 0.0 for t in times)
        # the replica is back up at campaign end
        lifecycle = report.replicas["replica-1"]["lifecycle"]
        assert lifecycle["running"]
        assert lifecycle["starts"] == 2
        assert lifecycle["kills"] == 1

    def test_link_chaos_is_recorded(self):
        report = asyncio.run(run_fleet_campaign(small_config()))

        lossy = report.link_chaos[
            FleetCampaignConfig().lossy_link
        ]
        assert lossy["losses"] + lossy["delays"] >= 1

    def test_report_serializes(self):
        import json

        report = asyncio.run(run_fleet_campaign(small_config()))
        record = report.to_dict()
        json.dumps(record)  # strictly JSON-serializable
        assert record["ok"] is True
        assert record["shed_rate"] == pytest.approx(
            report.shed / report.requests
        )
        latency = record["latency"]
        assert latency["fleet_p50"] <= latency["fleet_p99"]
        assert record["recovery"]["count"] >= 1

    def test_campaign_is_seeded(self):
        first = asyncio.run(run_fleet_campaign(small_config()))
        second = asyncio.run(run_fleet_campaign(small_config()))
        # wall-clock fields differ; the logical outcome must not
        assert first.requests == second.requests
        assert first.admitted == second.admitted
        assert first.rejected == second.rejected
        assert first.shed == second.shed

"""Fleet-scale harness: config discipline, recovery metric, mini sweep.

The full sweep lives in ``BENCH_fleet_scale.json``; here we pin the
harness mechanics — seed derivation per cell, the burst recovery
metric, and one miniature end-to-end cell + restart arm that must come
back audit-clean with exactly-once delivery.
"""

import asyncio

import pytest

from repro.fleet.scale import (
    FleetScaleConfig,
    FleetScaleReport,
    _run_cell,
    _run_restart_arm,
    _time_back_to_steady,
)


def config(**overrides):
    base = dict(
        seed=11,
        replica_counts=(1,),
        rate_multipliers=(1.0,),
        requests_per_cell=12,
        unique_sets=4,
        num_tasks=4,
        restart_num_tasks=4,
        restart_probes=8,
        gossip_interval=0.02,
    )
    base.update(overrides)
    return FleetScaleConfig(**base)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            config(replica_counts=())
        with pytest.raises(ValueError):
            config(replica_counts=(0,))
        with pytest.raises(ValueError):
            config(rate_multipliers=(0.0,))
        with pytest.raises(ValueError):
            config(requests_per_cell=0)
        with pytest.raises(ValueError):
            config(restart_probes=0)
        with pytest.raises(ValueError):
            config(restart_num_tasks=0)
        with pytest.raises(ValueError):
            config(steady_margin=0.0)

    def test_cell_loads_are_seed_distinct_but_reproducible(self):
        cfg = config()
        one = cfg.cell_load(1, 1.0)
        also_one = cfg.cell_load(1, 1.0)
        two = cfg.cell_load(2, 4.0)
        assert one.seed == also_one.seed
        assert one.seed != two.seed
        assert two.rate_multiplier == 4.0


class TestRecoveryMetric:
    def test_zero_when_everything_is_steady(self):
        assert _time_back_to_steady([0.01, 0.02, 0.015], 0.05) == 0.0

    def test_returns_completion_of_last_slow_response(self):
        latencies = [0.2, 0.05, 0.9, 0.01, 0.3]
        assert _time_back_to_steady(latencies, 0.25) == 0.9

    def test_empty_burst_is_zero(self):
        assert _time_back_to_steady([], 0.1) == 0.0


class TestMiniFleet:
    def test_single_cell_is_audit_clean(self):
        cell = asyncio.run(_run_cell(config(), 1, 1.0))
        assert cell["anomaly_count"] == 0
        assert cell["duplicate_deliveries"] == 0
        assert cell["errors"] == 0
        assert cell["replicas"] == 1
        assert cell["completed"] == 12
        attribution = cell["cache_attribution"]
        assert set(attribution) == {
            "hits_local",
            "hits_replicated",
            "delta_repaired",
            "misses",
            "replicated_in",
            "replicated_states_in",
        }

    def test_warm_restart_arm_resyncs_from_peer(self):
        arm = asyncio.run(
            _run_restart_arm(config(requests_per_cell=24), warm=True)
        )
        assert arm["warm"] is True
        assert arm["warmup_anomalies"] == 0
        assert arm["probe_anomalies"] == 0
        assert arm["duplicate_deliveries"] == 0
        # the dry-pull loop must have actually shipped entries into
        # the restarted replica before the probe burst
        assert arm["sync"]["pulls"] >= 1
        assert arm["sync"]["entries"] >= 1
        assert arm["replicated_in"] == arm["sync"]["entries"]
        assert arm["post_restart_hit_rate"] > 0.0


def test_report_ok_requires_clean_run_and_warm_win():
    report = FleetScaleReport(
        restart={"warm_better": True},
        anomaly_count=0,
        duplicate_deliveries=0,
    )
    assert report.ok
    assert report.to_dict()["ok"] is True
    report.anomaly_count = 1
    assert not report.ok
    report.anomaly_count = 0
    report.restart["warm_better"] = False
    assert not report.ok

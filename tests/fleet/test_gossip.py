"""Health beacons, seq-merged gossip state, replica gossip agents."""

import asyncio

import pytest

from repro.faults import ReplicaProcess
from repro.fleet import (
    GossipAgent,
    GossipState,
    HealthBeacon,
    worst_breaker_state,
)
from repro.service import BatchPolicy, ODMService


def make_replica(replica_id):
    return ReplicaProcess(
        replica_id,
        lambda: ODMService(
            workers=1,
            replica_id=replica_id,
            batch_policy=BatchPolicy(
                max_batch=4, max_wait=0.001, queue_capacity=16
            ),
            breaker_kwargs={"min_samples": 2, "cooldown_windows": 1},
        ),
    )


class TestHealthBeacon:
    def test_round_trip(self):
        beacon = HealthBeacon(
            replica_id="replica-0",
            seq=7,
            queue_depth=8,
            queue_capacity=16,
            level="heuristic",
            breakers={"flaky": "open"},
            shed=3.0,
        )
        assert beacon.occupancy == pytest.approx(0.5)
        assert HealthBeacon.from_dict(beacon.to_dict()) == beacon

    def test_from_service_beacon(self):
        async def scenario():
            async with ODMService(workers=1) as service:
                return service.beacon()

        record = asyncio.run(scenario())
        beacon = HealthBeacon.from_dict(record)
        assert beacon.replica_id == "replica-0"
        assert beacon.seq >= 1
        assert beacon.level == "exact"

    def test_malformed_breakers_rejected(self):
        with pytest.raises(ValueError, match="breakers"):
            HealthBeacon.from_dict({"breakers": "open"})

    def test_worst_breaker_state(self):
        assert worst_breaker_state([]) == "closed"
        assert worst_breaker_state(["closed", "half_open"]) == "half_open"
        assert (
            worst_breaker_state(["half_open", "open", "closed"]) == "open"
        )


class TestGossipState:
    def test_seq_merge_keeps_the_freshest(self):
        state = GossipState()
        assert state.absorb(HealthBeacon("r0", seq=2, queue_depth=5))
        assert not state.absorb(HealthBeacon("r0", seq=1, queue_depth=0))
        assert state.absorb(HealthBeacon("r0", seq=3, queue_depth=9))
        assert state.beacons["r0"].queue_depth == 9
        assert state.absorbed == 2
        assert state.stale == 1

    def test_merged_breakers_take_the_worst(self):
        state = GossipState()
        state.absorb(
            HealthBeacon("r0", seq=1, breakers={"flaky": "open"})
        )
        state.absorb(
            HealthBeacon(
                "r1",
                seq=1,
                breakers={"flaky": "closed", "edge": "half_open"},
            )
        )
        assert state.merged_breakers() == {
            "flaky": "open",
            "edge": "half_open",
        }


class TestGossipAgent:
    def test_breaker_propagates_between_replicas(self):
        async def scenario():
            a, b = make_replica("replica-a"), make_replica("replica-b")
            await a.start()
            await b.start()
            try:
                # replica-a pays the local evidence for a dead server
                for _ in range(4):
                    a.service.record_outcome("flaky", False, 1.0)
                assert (
                    a.service.close_health_window()["flaky"] == "open"
                )
                agent = GossipAgent(
                    b.service,
                    peers={
                        "replica-a": a.address,
                        "replica-b": b.address,  # self: filtered out
                    },
                )
                assert agent.peers == {"replica-a": a.address}
                reached = await agent.run_round()
                # replica-b now refuses the server without ever having
                # offloaded to it — remote evidence tripped its breaker
                return (
                    reached,
                    b.service.breaker_state("flaky"),
                    agent.stats(),
                )
            finally:
                await a.stop()
                await b.stop()

        reached, state, stats = asyncio.run(scenario())
        assert reached == 1
        assert state == "open"
        assert stats["exchanges"] == 1
        assert stats["unreachable"] == 0

    def test_dead_peer_never_stalls_a_round(self):
        async def scenario():
            a = make_replica("replica-a")
            await a.start()
            dead_port = a.port  # reuse after stop: connection refused
            await a.stop()
            b = make_replica("replica-b")
            await b.start()
            try:
                agent = GossipAgent(
                    b.service,
                    peers={"replica-a": ("127.0.0.1", dead_port)},
                    timeout=0.5,
                )
                reached = await agent.run_round()
                return reached, agent.unreachable
            finally:
                await b.stop()

        reached, unreachable = asyncio.run(scenario())
        assert reached == 0
        assert unreachable == 1

    def test_background_loop_start_stop(self):
        async def scenario():
            a, b = make_replica("replica-a"), make_replica("replica-b")
            await a.start()
            await b.start()
            try:
                agent = GossipAgent(
                    b.service,
                    peers={"replica-a": a.address},
                    interval=0.01,
                )
                await agent.start()
                assert agent.running
                await asyncio.sleep(0.08)
                await agent.stop()
                assert not agent.running
                return agent.rounds
            finally:
                await a.stop()
                await b.stop()

        rounds = asyncio.run(scenario())
        assert rounds >= 2

    def test_validation(self):
        service = ODMService(workers=1)
        with pytest.raises(ValueError, match="interval"):
            GossipAgent(service, peers={}, interval=0.0)
        with pytest.raises(ValueError, match="timeout"):
            GossipAgent(service, peers={}, timeout=0.0)

"""Unit tests for the fleet cache tier (digest / sync / absorb).

Everything here runs against in-process :class:`SolverCache` pairs —
no sockets — pinning the protocol invariants the live fleet relies
on: budgets clamp to the responder, oversized records are skipped and
counted, resident entries are never overwritten, and replication can
never change what a cache would answer.
"""

import asyncio

import pytest

from repro.fleet.cachetier import (
    CacheReplicator,
    CacheTierConfig,
    absorb_sync_reply,
    build_sync_reply,
    cache_digest,
    warm_from_peer,
)
from repro.knapsack import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    SolverCache,
    solve_delta,
    solve_dp,
)
from repro.knapsack.serialize import (
    CACHE_WIRE_VERSION,
    encode_entry,
    key_fingerprint,
)

RESOLUTION = 2_000


def _instance(index: int) -> MCKPInstance:
    return MCKPInstance(
        classes=(
            MCKPClass(
                "c0",
                (
                    MCKPItem(value=1.0, weight=0.0),
                    MCKPItem(value=5.0 + index, weight=4.0),
                ),
            ),
            MCKPClass(
                "c1",
                (
                    MCKPItem(value=2.0, weight=0.0),
                    MCKPItem(value=9.0, weight=7.0 - (index % 10) * 0.5),
                ),
            ),
        ),
        capacity=10.0,
    )


def _filled_cache(n: int, delta_states: int = 0) -> SolverCache:
    cache = SolverCache(maxsize=64, delta_maxstates=8)
    for index in range(n):
        instance = _instance(index)
        key = SolverCache.key_for("dp", instance, resolution=RESOLUTION)
        selection = solve_dp(instance, resolution=RESOLUTION)
        cache.store(
            key, None if selection is None else dict(selection.choices)
        )
    for index in range(delta_states):
        instance = _instance(100 + index)
        key = SolverCache.key_for(
            "delta", instance, resolution=RESOLUTION
        )
        cache.store_state(
            key, solve_delta(instance, resolution=RESOLUTION).state
        )
    return cache


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
def test_digest_advertises_hottest_fingerprints():
    cache = _filled_cache(6)
    hot_key = cache.keys()[2]
    for _ in range(3):
        cache.lookup(hot_key)
    digest = cache_digest(cache, limit=2)
    assert digest["v"] == CACHE_WIRE_VERSION
    assert digest["entries"] == 6
    assert len(digest["hot"]) == 2
    assert digest["hot"][0] == key_fingerprint(hot_key)


def test_digest_probe_does_not_skew_hit_stats():
    cache = _filled_cache(4)
    before = dict(cache.stats)
    cache_digest(cache, limit=4)
    assert dict(cache.stats) == before


# ----------------------------------------------------------------------
# sync replies: budgets, have-lists, size caps
# ----------------------------------------------------------------------
def test_reply_respects_responder_budget_clamp():
    cache = _filled_cache(10)
    config = CacheTierConfig(sync_budget=3)
    reply = build_sync_reply(cache, budget=1000, config=config)
    assert len(reply["entries"]) == 3


def test_reply_skips_entries_the_requester_holds():
    cache = _filled_cache(5)
    have = [key_fingerprint(key) for key in cache.keys()[:3]]
    reply = build_sync_reply(cache, have=have)
    sent = {record["key"]["classes"][0][1][1][0] for record in
            reply["entries"]}
    assert len(reply["entries"]) == 2
    # the full budget is still available past the known set
    full = build_sync_reply(cache)
    assert len(full["entries"]) == 5
    assert sent <= {
        record["key"]["classes"][0][1][1][0]
        for record in full["entries"]
    }


def test_reply_enforces_size_cap_and_counts_skips():
    cache = _filled_cache(4, delta_states=2)
    reply = build_sync_reply(
        cache, config=CacheTierConfig(max_entry_bytes=1)
    )
    assert reply["entries"] == []
    assert reply["states"] == []
    assert reply["oversize_skipped"] == 6


def test_reply_for_missing_cache_is_empty():
    reply = build_sync_reply(None)
    assert reply["entries"] == [] and reply["states"] == []


# ----------------------------------------------------------------------
# absorption
# ----------------------------------------------------------------------
def test_absorb_replicates_and_attributes_hits():
    source = _filled_cache(4, delta_states=2)
    target = SolverCache(maxsize=64, delta_maxstates=8)
    counts = absorb_sync_reply(target, build_sync_reply(source))
    assert counts == {"entries": 4, "states": 2, "rejected": 0}
    assert target.stats["replicated_in"] == 4
    assert target.stats["replicated_states_in"] == 2
    # a replicated entry answers exactly what the source would
    key = source.keys()[0]
    hit, choices = target.lookup(key)
    assert hit and choices == source.lookup(key)[1]
    assert target.stats["hits_replicated"] == 1
    assert target.stats["hits_local"] == 0


def test_absorb_never_overwrites_resident_entries():
    source = _filled_cache(3)
    target = _filled_cache(3)
    resident_key = target.keys()[0]
    target.lookup(resident_key)  # give it history worth keeping
    hits_before = target.stats["hits"]
    counts = absorb_sync_reply(target, build_sync_reply(source))
    assert counts["entries"] == 0
    assert target.stats["replicated_in"] == 0
    # origin stays local: the next hit counts as hits_local
    target.lookup(resident_key)
    assert target.stats["hits_local"] == hits_before + 1


def test_absorb_rejects_bad_records_individually():
    source = _filled_cache(2)
    reply = build_sync_reply(source)
    reply["entries"].append({"v": CACHE_WIRE_VERSION + 1})
    reply["entries"].append("not even a dict")
    target = SolverCache(maxsize=64)
    counts = absorb_sync_reply(target, reply)
    assert counts == {"entries": 2, "states": 0, "rejected": 2}


# ----------------------------------------------------------------------
# replicator gating
# ----------------------------------------------------------------------
def test_wants_pull_only_when_digest_has_news():
    source = _filled_cache(3)
    replicator = CacheReplicator(SolverCache(maxsize=64))
    digest = cache_digest(source, limit=3)
    assert replicator.wants_pull(digest)
    absorb_sync_reply(replicator.cache, build_sync_reply(source))
    assert not replicator.wants_pull(digest)
    assert not replicator.wants_pull({"v": 1, "entries": 0, "hot": []})


def test_replicator_stats_accumulate():
    source = _filled_cache(3)
    replicator = CacheReplicator(SolverCache(maxsize=64))
    reply = build_sync_reply(source)
    reply["entries"].append({"v": 99})
    replicator.absorb(reply)
    stats = replicator.stats()
    assert stats["sync_rounds"] == 1
    assert stats["entries_absorbed"] == 3
    assert stats["records_rejected"] == 1


# ----------------------------------------------------------------------
# explicit restart-path warming
# ----------------------------------------------------------------------
class _FakeClient:
    """A ServiceClient stand-in answering cache_sync from a cache."""

    def __init__(self, cache: SolverCache, config: CacheTierConfig):
        self.cache = cache
        self.config = config

    async def cache_sync(self, have=(), budget=None, states=None,
                         max_bytes=None):
        reply = build_sync_reply(
            self.cache,
            have=have,
            budget=budget,
            states=states,
            max_bytes=max_bytes,
            config=self.config,
        )
        reply["op"] = "cache_sync"
        return reply


def test_warm_from_peer_drains_in_budgeted_pulls():
    async def run():
        peer = _filled_cache(7, delta_states=1)
        config = CacheTierConfig(sync_budget=3, state_budget=2)
        cache = SolverCache(maxsize=64, delta_maxstates=8)
        client = _FakeClient(peer, config)
        pulls = []
        while True:
            counts = await warm_from_peer(cache, client, config)
            pulls.append(counts["entries"])
            if counts["entries"] == 0:
                break
        return cache, pulls

    cache, pulls = asyncio.run(run())
    assert pulls == [3, 3, 1, 0]
    assert len(cache) == 7
    assert cache.stats["replicated_in"] == 7

"""Tests for the EDF conformance validator (and, through it, stronger
validation of every scheduler in the library)."""

import pytest

from repro.core.task import Task, TaskSet
from repro.runtime.system import OffloadingSystem
from repro.sched.fixed_priority import FixedPriorityScheduler
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import NeverRespondsTransport
from repro.sched.validator import validate_schedule
from repro.sim.engine import Simulator
from repro.sim.trace import Trace
from repro.vision.tasks import table1_task_set


class TestRealSchedulesConform:
    def test_local_edf_schedule_validates(self):
        tasks = TaskSet(
            [Task("a", 0.3, 1.0), Task("b", 0.4, 1.5), Task("c", 0.2, 0.5)]
        )
        sim = Simulator()
        trace = OffloadingScheduler(sim, tasks).run(9.0)
        assert validate_schedule(trace) == []

    def test_offloading_schedule_validates(self):
        report = OffloadingSystem(
            table1_task_set(), scenario="not_busy", seed=6
        ).run(10.0)
        assert validate_schedule(report.trace) == []

    def test_compensating_schedule_validates(self):
        tasks = table1_task_set()
        from repro.core.odm import OffloadingDecisionManager

        decision = OffloadingDecisionManager("dp").decide(tasks)
        sim = Simulator()
        trace = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=NeverRespondsTransport(),
        ).run(10.0)
        assert validate_schedule(trace) == []

    def test_fixed_priority_schedule_validates(self):
        tasks = TaskSet(
            [Task("t1", 1.0, 4.0), Task("t2", 2.0, 8.0),
             Task("t3", 3.0, 16.0)]
        )
        sim = Simulator()
        trace = FixedPriorityScheduler(sim, tasks).run(32.0)
        assert validate_schedule(trace) == []


class TestViolationsDetected:
    def _base_trace(self):
        """Two sub-jobs; 'late' runs before 'early' despite a later
        deadline — a priority violation."""
        trace = Trace()
        trace.record_release("late", 0, 0.0, 5.0)
        trace.record_release("early", 0, 0.0, 1.0)
        trace.record_subjob_event(0.0, "late", 0, "local", 5.0, "submitted")
        trace.record_subjob_event(0.0, "early", 0, "local", 1.0, "submitted")
        return trace

    def test_priority_inversion_detected(self):
        trace = self._base_trace()
        trace.record_segment("late", 0, "local", 0.0, 0.5)
        trace.record_subjob_event(0.5, "late", 0, "local", 5.0, "completed")
        trace.record_segment("early", 0, "local", 0.5, 0.8)
        trace.record_subjob_event(0.8, "early", 0, "local", 1.0, "completed")
        violations = validate_schedule(trace)
        assert any(v.kind == "priority" for v in violations)

    def test_idle_while_pending_detected(self):
        trace = Trace()
        trace.record_release("a", 0, 0.0, 2.0)
        trace.record_subjob_event(0.0, "a", 0, "local", 2.0, "submitted")
        # processor inexplicably waits until t=1 to run it
        trace.record_segment("a", 0, "local", 1.0, 1.5)
        trace.record_subjob_event(1.5, "a", 0, "local", 2.0, "completed")
        violations = validate_schedule(trace)
        assert any(v.kind == "idle" for v in violations)

    def test_unsubmitted_segment_detected(self):
        trace = Trace()
        trace.record_segment("ghost", 0, "local", 0.0, 0.5)
        violations = validate_schedule(trace)
        assert any("unsubmitted" in v.detail for v in violations)

    def test_clean_sequential_trace_passes(self):
        trace = self._base_trace()
        trace.record_segment("early", 0, "local", 0.0, 0.3)
        trace.record_subjob_event(0.3, "early", 0, "local", 1.0,
                                  "completed")
        trace.record_segment("late", 0, "local", 0.3, 0.8)
        trace.record_subjob_event(0.8, "late", 0, "local", 5.0,
                                  "completed")
        assert validate_schedule(trace) == []

    def test_bad_event_kind_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError):
            trace.record_subjob_event(0.0, "a", 0, "local", 1.0, "paused")

"""Unit tests for the fixed-priority baseline (RM/DM, RTA, scheduler)."""

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.sched.fixed_priority import (
    FixedPriorityScheduler,
    deadline_monotonic_order,
    rate_monotonic_order,
    response_time_analysis,
    suspension_oblivious_rta,
)
from repro.sim.engine import Simulator


class TestPriorityOrders:
    def test_rate_monotonic_sorts_by_period(self):
        tasks = [Task("slow", 0.1, 2.0), Task("fast", 0.1, 1.0)]
        assert [t.task_id for t in rate_monotonic_order(tasks)] == [
            "fast", "slow",
        ]

    def test_deadline_monotonic_sorts_by_deadline(self):
        tasks = [
            Task("a", 0.1, 2.0, deadline=1.5),
            Task("b", 0.1, 2.0, deadline=0.5),
        ]
        assert [t.task_id for t in deadline_monotonic_order(tasks)] == [
            "b", "a",
        ]

    def test_ties_broken_by_id(self):
        tasks = [Task("z", 0.1, 1.0), Task("a", 0.1, 1.0)]
        assert [t.task_id for t in rate_monotonic_order(tasks)] == ["a", "z"]


class TestResponseTimeAnalysis:
    def test_textbook_example(self):
        """Classic RTA: C=(1,2,3), T=(4,8,16) under RM.
        R1=1, R2=3, R3=7 (the standard fixpoint iteration)."""
        tasks = [
            Task("t1", 1.0, 4.0),
            Task("t2", 2.0, 8.0),
            Task("t3", 3.0, 16.0),
        ]
        results = response_time_analysis(tasks, order=rate_monotonic_order)
        assert results["t1"] == pytest.approx(1.0)
        assert results["t2"] == pytest.approx(3.0)
        # t3: iterate R = 3 + ceil(R/4)*1 + ceil(R/8)*2 -> 7
        assert results["t3"] == pytest.approx(7.0)

    def test_unschedulable_reports_none(self):
        tasks = [Task("t1", 0.9, 1.0), Task("t2", 0.5, 2.0)]
        results = response_time_analysis(tasks, order=rate_monotonic_order)
        assert results["t1"] == pytest.approx(0.9)
        assert results["t2"] is None

    def test_single_task_is_its_wcet(self):
        results = response_time_analysis([Task("t", 0.3, 1.0)])
        assert results["t"] == pytest.approx(0.3)


class TestSuspensionObliviousRta:
    def test_inflation_includes_response_budget(self):
        benefit = BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(0.5, 1.0)]
        )
        off = OffloadableTask(
            task_id="o", wcet=0.2, period=2.0,
            setup_time=0.1, compensation_time=0.2, benefit=benefit,
        )
        results = suspension_oblivious_rta([off], {"o": 0.5})
        # inflated C = 0.1 + 0.5 + 0.2 = 0.8, alone on the CPU
        assert results["o"] == pytest.approx(0.8)

    def test_more_pessimistic_than_edf_analysis(self):
        """The suspension-oblivious FP analysis rejects configurations
        the paper's split EDF accepts — the motivation for the EDF-based
        design."""
        benefit = BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(0.6, 1.0)]
        )
        off = OffloadableTask(
            task_id="o", wcet=0.25, period=1.0,
            setup_time=0.05, compensation_time=0.25, benefit=benefit,
        )
        other = Task("l", 0.2, 0.85)
        results = suspension_oblivious_rta([off, other], {"o": 0.6})
        # inflated o = 0.05+0.6+0.25 = 0.9 plus interference from l -> > D
        assert results["o"] is None
        # ... while Theorem 3 accepts this very configuration (see the
        # split-vs-naive scheduler tests using the same numbers).


class TestFixedPriorityScheduler:
    def test_schedulable_set_meets_deadlines(self):
        tasks = TaskSet(
            [Task("t1", 1.0, 4.0), Task("t2", 2.0, 8.0),
             Task("t3", 3.0, 16.0)]
        )
        sim = Simulator()
        trace = FixedPriorityScheduler(
            sim, tasks, order=rate_monotonic_order
        ).run(32.0)
        assert trace.all_deadlines_met

    def test_observed_response_time_matches_rta(self):
        tasks = TaskSet(
            [Task("t1", 1.0, 4.0), Task("t2", 2.0, 8.0),
             Task("t3", 3.0, 16.0)]
        )
        sim = Simulator()
        trace = FixedPriorityScheduler(
            sim, tasks, order=rate_monotonic_order
        ).run(16.0)
        # the synchronous release at t=0 is the critical instant, so the
        # first job's response time equals the RTA bound
        assert trace.jobs_of("t3")[0].response_time == pytest.approx(7.0)

    def test_high_priority_preempts_low(self):
        tasks = TaskSet([Task("hi", 0.5, 2.0), Task("lo", 1.0, 8.0)])
        sim = Simulator()
        trace = FixedPriorityScheduler(
            sim, tasks, order=rate_monotonic_order
        ).run(8.0)
        # lo's first job: 1.0 of work, preempted at t=2 by hi
        lo_first = trace.jobs_of("lo")[0]
        assert lo_first.response_time == pytest.approx(1.5)

    def test_unschedulable_set_misses(self):
        tasks = TaskSet([Task("t1", 0.6, 1.0), Task("t2", 0.9, 2.0)])
        sim = Simulator()
        trace = FixedPriorityScheduler(
            sim, tasks, order=rate_monotonic_order
        ).run(10.0)
        assert trace.deadline_miss_count > 0

"""Integration tests for the split-deadline EDF offloading scheduler.

These validate the paper's mechanism end to end on the DES: benefit
realization on both paths, compensation-timer semantics, the hard
guarantee that Theorem-3-feasible configurations never miss deadlines
(even with a dead server), and the split-vs-naive difference.
"""

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.deadlines import split_deadlines
from repro.core.schedulability import OffloadAssignment, theorem3_test
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import (
    FixedLatencyTransport,
    NeverRespondsTransport,
)
from repro.sim.engine import Simulator


def _offload_task(task_id="o", wcet=0.1, period=1.0, setup=0.02,
                  comp=0.1, post=0.01, r=0.3, local_benefit=1.0,
                  offload_benefit=5.0):
    return OffloadableTask(
        task_id=task_id, wcet=wcet, period=period,
        setup_time=setup, compensation_time=comp, post_time=post,
        benefit=BenefitFunction(
            [
                BenefitPoint(0.0, local_benefit),
                BenefitPoint(r, offload_benefit),
            ]
        ),
    )


def _run(tasks, response_times, transport_factory, horizon=5.0,
         deadline_mode="split"):
    sim = Simulator()
    transport = transport_factory(sim)
    scheduler = OffloadingScheduler(
        sim, tasks, response_times=response_times, transport=transport,
        deadline_mode=deadline_mode,
    )
    trace = scheduler.run(horizon)
    return trace, transport


class TestLocalOnly:
    def test_periodic_releases(self):
        tasks = TaskSet([Task("a", 0.1, 1.0)])
        sim = Simulator()
        trace = OffloadingScheduler(sim, tasks).run(3.5)
        jobs = trace.jobs_of("a")
        assert [j.release for j in jobs] == [0.0, 1.0, 2.0, 3.0]
        assert all(j.met_deadline for j in jobs)

    def test_feasible_local_set_meets_all_deadlines(self):
        tasks = TaskSet(
            [Task("a", 0.3, 1.0), Task("b", 0.4, 1.5), Task("c", 0.2, 0.5)]
        )
        assert tasks.total_utilization <= 1.0
        sim = Simulator()
        trace = OffloadingScheduler(sim, tasks).run(15.0)
        assert trace.all_deadlines_met
        assert len(trace.jobs) > 30

    def test_offloadable_task_running_locally_realizes_local_benefit(self):
        task = _offload_task()
        tasks = TaskSet([task])
        sim = Simulator()
        trace = OffloadingScheduler(sim, tasks).run(2.5)
        for rec in trace.jobs_of("o"):
            assert rec.benefit == pytest.approx(1.0)
            assert not rec.offloaded


class TestOffloadSuccessPath:
    def test_fast_server_realizes_offload_benefit(self):
        task = _offload_task()
        tasks = TaskSet([task])
        trace, transport = _run(
            tasks, {"o": 0.3},
            lambda sim: FixedLatencyTransport(sim, latency=0.05),
        )
        jobs = trace.jobs_of("o")
        assert jobs, "no jobs released"
        for rec in jobs:
            assert rec.offloaded
            assert rec.result_returned
            assert not rec.compensated
            assert rec.benefit == pytest.approx(5.0)
        assert trace.all_deadlines_met
        assert transport.submitted == len(jobs)

    def test_result_exactly_at_budget_still_counts(self):
        """A result arriving at setup_finish + R_i beats the timer
        (timer priority fires after the result callback ordering is
        settled by schedule order — the result was scheduled first)."""
        task = _offload_task(post=0.0)
        tasks = TaskSet([task])
        trace, _ = _run(
            tasks, {"o": 0.3},
            lambda sim: FixedLatencyTransport(sim, latency=0.3),
        )
        # With latency == R the compensation timer and result tie; either
        # path must still meet the deadline and realize *some* benefit.
        assert trace.all_deadlines_met

    def test_weight_scales_realized_benefit(self):
        task = OffloadableTask(
            task_id="o", wcet=0.1, period=1.0, weight=3.0,
            setup_time=0.02, compensation_time=0.1,
            benefit=BenefitFunction(
                [BenefitPoint(0.0, 1.0), BenefitPoint(0.3, 5.0)]
            ),
        )
        trace, _ = _run(
            TaskSet([task]), {"o": 0.3},
            lambda sim: FixedLatencyTransport(sim, latency=0.05),
        )
        assert trace.jobs_of("o")[0].benefit == pytest.approx(15.0)


class TestCompensationPath:
    def test_slow_server_triggers_compensation(self):
        task = _offload_task()
        tasks = TaskSet([task])
        trace, _ = _run(
            tasks, {"o": 0.3},
            lambda sim: FixedLatencyTransport(sim, latency=2.0),
        )
        for rec in trace.jobs_of("o"):
            assert rec.offloaded
            assert rec.compensated
            assert not rec.result_returned
            assert rec.benefit == pytest.approx(1.0)  # local quality only
        assert trace.all_deadlines_met

    def test_dead_server_never_breaks_deadlines(self):
        """The headline guarantee: with a completely dead server, every
        deadline is still met through local compensation."""
        tasks = TaskSet(
            [
                _offload_task("o1", wcet=0.15, comp=0.15),
                _offload_task("o2", wcet=0.2, comp=0.2, period=1.5),
                Task("l", 0.3, 1.0),
            ]
        )
        assignments = [OffloadAssignment("o1", 0.3),
                       OffloadAssignment("o2", 0.3)]
        assert theorem3_test(tasks, assignments).feasible
        trace, _ = _run(
            tasks, {"o1": 0.3, "o2": 0.3},
            lambda sim: NeverRespondsTransport(),
            horizon=12.0,
        )
        assert trace.all_deadlines_met
        assert trace.compensation_rate() == 1.0

    def test_compensation_timer_starts_at_setup_completion(self):
        """The compensation sub-job is released exactly R_i after the
        setup phase finishes, not after the job release."""
        task = _offload_task()
        tasks = TaskSet([task])
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, response_times={"o": 0.3},
            transport=NeverRespondsTransport(),
        )
        trace = scheduler.run(0.9)
        comp_segments = [
            s for s in trace.segments if s.phase == "compensation"
        ]
        # setup runs [0, 0.02]; timer at 0.02 + 0.3 = 0.32
        assert comp_segments[0].start == pytest.approx(0.32)

    def test_late_result_is_discarded(self):
        """A result arriving after compensation started must not spawn a
        post-processing sub-job or change the realized benefit."""
        task = _offload_task()
        tasks = TaskSet([task])
        trace, _ = _run(
            tasks, {"o": 0.3},
            lambda sim: FixedLatencyTransport(sim, latency=0.5),
            horizon=2.5,
        )
        post_segments = [s for s in trace.segments if s.phase == "post"]
        assert post_segments == []
        for rec in trace.jobs_of("o"):
            assert rec.compensated
            assert rec.benefit == pytest.approx(1.0)


class TestSplitVsNaive:
    def _stress_set(self):
        """A configuration where naive EDF fails but split succeeds.

        Hand analysis of the first busy period: under naive deadlines
        the local task (deadline 0.85) outranks the setup sub-job
        (deadline 1.0), so setup only finishes at 0.25; the R_i = 0.6
        timer then fires at 0.85, leaving 0.15 < C_{i,2} = 0.25 before
        the absolute deadline — a guaranteed miss.  The split deadline
        D_{i,1} ≈ 0.067 runs setup *first*, and Theorem 3 holds
        (0.3/0.4 + 0.2/0.85 ≈ 0.985 ≤ 1), so the split schedule meets
        every deadline even with a dead server.
        """
        off = _offload_task("o", wcet=0.25, comp=0.25, setup=0.05,
                            period=1.0, r=0.6)
        return TaskSet([off, Task("l1", 0.2, 0.85)])

    def test_split_meets_deadlines_under_worst_case(self):
        tasks = self._stress_set()
        assignments = [OffloadAssignment("o", 0.6)]
        assert theorem3_test(tasks, assignments).feasible
        trace, _ = _run(
            tasks, {"o": 0.6}, lambda sim: NeverRespondsTransport(),
            horizon=10.0, deadline_mode="split",
        )
        assert trace.all_deadlines_met

    def test_naive_misses_deadlines_under_worst_case(self):
        tasks = self._stress_set()
        trace, _ = _run(
            tasks, {"o": 0.6}, lambda sim: NeverRespondsTransport(),
            horizon=10.0, deadline_mode="naive",
        )
        assert trace.deadline_miss_count > 0


class TestValidation:
    def test_unknown_task_in_response_times(self):
        tasks = TaskSet([Task("a", 0.1, 1.0)])
        sim = Simulator()
        with pytest.raises(ValueError, match="unknown task"):
            OffloadingScheduler(sim, tasks, response_times={"zzz": 0.1},
                                transport=NeverRespondsTransport())

    def test_offloading_plain_task_rejected(self):
        tasks = TaskSet([Task("a", 0.1, 1.0)])
        sim = Simulator()
        with pytest.raises(ValueError, match="not offloadable"):
            OffloadingScheduler(sim, tasks, response_times={"a": 0.1},
                                transport=NeverRespondsTransport())

    def test_offloading_without_transport_rejected(self):
        tasks = TaskSet([_offload_task()])
        sim = Simulator()
        with pytest.raises(ValueError, match="transport"):
            OffloadingScheduler(sim, tasks, response_times={"o": 0.3})

    def test_bad_deadline_mode_rejected(self):
        tasks = TaskSet([Task("a", 0.1, 1.0)])
        with pytest.raises(ValueError, match="deadline_mode"):
            OffloadingScheduler(Simulator(), tasks, deadline_mode="edf")

    def test_double_start_rejected(self):
        tasks = TaskSet([Task("a", 0.1, 1.0)])
        sim = Simulator()
        sched = OffloadingScheduler(sim, tasks)
        sched.start(1.0)
        with pytest.raises(RuntimeError):
            sched.start(1.0)

    def test_negative_response_time_rejected(self):
        tasks = TaskSet([_offload_task()])
        with pytest.raises(ValueError, match="negative"):
            OffloadingScheduler(
                Simulator(), tasks, response_times={"o": -0.1},
                transport=NeverRespondsTransport(),
            )


class TestSetupDeadlines:
    def test_split_mode_uses_paper_formula(self):
        task = _offload_task()
        tasks = TaskSet([task])
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, response_times={"o": 0.3},
            transport=NeverRespondsTransport(),
        )
        scheduler.start(0.5)
        sim.run_until(0.001)  # release happened
        current = scheduler.processor.current
        assert current is not None and current.phase == "setup"
        split = split_deadlines(task, 0.3)
        assert current.absolute_deadline == pytest.approx(
            split.setup_deadline
        )

    def test_naive_mode_uses_full_deadline(self):
        task = _offload_task()
        tasks = TaskSet([task])
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, response_times={"o": 0.3},
            transport=NeverRespondsTransport(), deadline_mode="naive",
        )
        scheduler.start(0.5)
        sim.run_until(0.001)
        current = scheduler.processor.current
        assert current.absolute_deadline == pytest.approx(1.0)


class TestSporadicReleases:
    def test_release_jitter_extends_gaps(self):
        tasks = TaskSet([Task("a", 0.01, 1.0)])
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, release_jitter=lambda task: 0.5
        )
        trace = scheduler.run(4.0)
        releases = [j.release for j in trace.jobs_of("a")]
        assert releases == [0.0, 1.5, 3.0]

    def test_negative_jitter_rejected_at_release(self):
        tasks = TaskSet([Task("a", 0.01, 1.0)])
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, release_jitter=lambda task: -0.5
        )
        scheduler.start(3.0)
        with pytest.raises(ValueError):
            sim.run_until(3.0)


class TestReleaseOffsets:
    def test_phased_releases(self):
        tasks = TaskSet([Task("a", 0.05, 1.0), Task("b", 0.05, 1.0)])
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, release_offsets={"b": 0.4}
        )
        trace = scheduler.run(2.5)
        assert [j.release for j in trace.jobs_of("a")] == [0.0, 1.0, 2.0]
        assert [j.release for j in trace.jobs_of("b")] == [0.4, 1.4, 2.4]
        assert trace.all_deadlines_met

    def test_offset_beyond_horizon_skips_task(self):
        tasks = TaskSet([Task("a", 0.05, 1.0)])
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, release_offsets={"a": 5.0}
        )
        trace = scheduler.run(2.0)
        assert trace.jobs_of("a") == []

    def test_unknown_offset_task_rejected(self):
        tasks = TaskSet([Task("a", 0.05, 1.0)])
        with pytest.raises(ValueError, match="unknown task"):
            OffloadingScheduler(
                Simulator(), tasks, release_offsets={"zzz": 0.1}
            )

    def test_negative_offset_rejected(self):
        tasks = TaskSet([Task("a", 0.05, 1.0)])
        with pytest.raises(ValueError, match="negative"):
            OffloadingScheduler(
                Simulator(), tasks, release_offsets={"a": -0.1}
            )

"""Unit tests for the preemptive EDF uniprocessor."""

import pytest

from repro.core.task import Task
from repro.sched.jobs import Job, SubJob
from repro.sched.uniprocessor import Uniprocessor
from repro.sim.engine import Simulator
from repro.sim.trace import Trace


def _subjob(deadline, remaining, task_id="t", job_id=0, on_complete=None):
    task = Task(task_id, wcet=max(remaining, 1e-9) if remaining else 1e-9,
                period=100.0)
    job = Job(task=task, job_id=job_id, release=0.0,
              absolute_deadline=deadline)
    return SubJob(
        job=job, phase="local", wcet=remaining, remaining=remaining,
        absolute_deadline=deadline, release=0.0, on_complete=on_complete,
    )


class TestBasicExecution:
    def test_single_subjob_runs_to_completion(self, sim):
        done = []
        cpu = Uniprocessor(sim)
        cpu.submit(_subjob(10.0, 0.5, on_complete=lambda sj, t: done.append(t)))
        sim.run_until(1.0)
        assert done == [0.5]
        assert not cpu.busy

    def test_zero_length_completes_instantly(self, sim):
        done = []
        cpu = Uniprocessor(sim)
        cpu.submit(_subjob(10.0, 0.0, on_complete=lambda sj, t: done.append(t)))
        assert done == [0.0]

    def test_completed_subjob_rejected(self, sim):
        cpu = Uniprocessor(sim)
        sj = _subjob(10.0, 0.1)
        sj.completed = True
        with pytest.raises(ValueError):
            cpu.submit(sj)

    def test_sequential_execution_in_edf_order(self, sim):
        order = []
        cpu = Uniprocessor(sim)
        cpu.submit(_subjob(5.0, 0.2, task_id="late",
                           on_complete=lambda sj, t: order.append(sj.task_id)))
        cpu.submit(_subjob(1.0, 0.2, task_id="early",
                           on_complete=lambda sj, t: order.append(sj.task_id)))
        sim.run_until(1.0)
        # "late" started first (was alone), got preempted by "early"
        assert order == ["early", "late"]

    def test_speed_scales_duration(self, sim):
        done = []
        cpu = Uniprocessor(sim, speed=2.0)
        cpu.submit(_subjob(10.0, 1.0, on_complete=lambda sj, t: done.append(t)))
        sim.run_until(1.0)
        assert done == [pytest.approx(0.5)]

    def test_invalid_speed_rejected(self, sim):
        with pytest.raises(ValueError):
            Uniprocessor(sim, speed=0.0)


class TestPreemption:
    def test_earlier_deadline_preempts(self, sim):
        trace = Trace()
        cpu = Uniprocessor(sim, trace)
        finish_times = {}

        low = _subjob(10.0, 1.0, task_id="low",
                      on_complete=lambda sj, t: finish_times.update(low=t))
        cpu.submit(low)
        # at t=0.3 a tighter sub-job arrives
        sim.schedule_at(
            0.3,
            lambda ev: cpu.submit(
                _subjob(
                    1.0, 0.2, task_id="high",
                    on_complete=lambda sj, t: finish_times.update(high=t),
                )
            ),
        )
        sim.run_until(2.0)
        assert finish_times["high"] == pytest.approx(0.5)
        assert finish_times["low"] == pytest.approx(1.2)
        assert trace.preemptions == 1

    def test_later_deadline_does_not_preempt(self, sim):
        trace = Trace()
        cpu = Uniprocessor(sim, trace)
        finish = {}
        cpu.submit(_subjob(1.0, 0.5, task_id="a",
                           on_complete=lambda sj, t: finish.update(a=t)))
        sim.schedule_at(
            0.2,
            lambda ev: cpu.submit(
                _subjob(5.0, 0.1, task_id="b",
                        on_complete=lambda sj, t: finish.update(b=t))
            ),
        )
        sim.run_until(2.0)
        assert finish["a"] == pytest.approx(0.5)
        assert finish["b"] == pytest.approx(0.6)
        assert trace.preemptions == 0

    def test_equal_deadline_does_not_preempt(self, sim):
        trace = Trace()
        cpu = Uniprocessor(sim, trace)
        finish = {}
        cpu.submit(_subjob(1.0, 0.4, task_id="a",
                           on_complete=lambda sj, t: finish.update(a=t)))
        sim.schedule_at(
            0.1,
            lambda ev: cpu.submit(
                _subjob(1.0, 0.1, task_id="b",
                        on_complete=lambda sj, t: finish.update(b=t))
            ),
        )
        sim.run_until(2.0)
        assert finish["a"] == pytest.approx(0.4)
        assert trace.preemptions == 0

    def test_remaining_time_banked_across_preemptions(self, sim):
        cpu = Uniprocessor(sim)
        finish = {}
        victim = _subjob(10.0, 1.0, task_id="victim",
                         on_complete=lambda sj, t: finish.update(victim=t))
        cpu.submit(victim)
        for k, start in enumerate((0.2, 0.6)):
            sim.schedule_at(
                start,
                lambda ev, k=k: cpu.submit(
                    _subjob(1.0 + k, 0.1, task_id=f"p{k}", job_id=k)
                ),
            )
        sim.run_until(5.0)
        # victim executed 1.0 total, interrupted twice by 0.1 each
        assert finish["victim"] == pytest.approx(1.2)


class TestTraceRecording:
    def test_segments_cover_execution(self, sim):
        trace = Trace()
        cpu = Uniprocessor(sim, trace)
        trace.record_release("t", 0, 0.0, 10.0)
        cpu.submit(_subjob(10.0, 0.5))
        sim.run_until(1.0)
        assert trace.busy_time() == pytest.approx(0.5)

    def test_preempted_execution_split_into_segments(self, sim):
        trace = Trace()
        cpu = Uniprocessor(sim, trace)
        cpu.submit(_subjob(10.0, 1.0, task_id="low"))
        sim.schedule_at(
            0.5, lambda ev: cpu.submit(_subjob(1.0, 0.2, task_id="hi"))
        )
        sim.run_until(3.0)
        low_segments = [s for s in trace.segments if s.task_id == "low"]
        assert len(low_segments) == 2
        assert sum(s.length for s in low_segments) == pytest.approx(1.0)

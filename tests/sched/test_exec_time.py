"""Unit tests for execution-time models."""

import numpy as np
import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task
from repro.sched.exec_time import UniformScaleModel, WcetModel


def _task():
    benefit = BenefitFunction(
        [
            BenefitPoint(0.0, 0.0),
            BenefitPoint(0.3, 1.0, setup_time=0.04,
                         compensation_time=0.15),
        ]
    )
    return OffloadableTask(
        task_id="o", wcet=0.2, period=1.0,
        setup_time=0.02, compensation_time=0.2, post_time=0.05,
        benefit=benefit,
    )


class TestWcetModel:
    def test_local_phase(self):
        assert WcetModel().duration(_task(), "local", 0.0, 0) == 0.2

    def test_setup_uses_level_override(self):
        assert WcetModel().duration(_task(), "setup", 0.3, 0) == 0.04

    def test_setup_falls_back_to_task_default(self):
        assert WcetModel().duration(_task(), "setup", 0.25, 0) == 0.02

    def test_compensation_uses_level_override(self):
        assert WcetModel().duration(_task(), "compensation", 0.3, 0) == 0.15

    def test_post_phase(self):
        assert WcetModel().duration(_task(), "post", 0.3, 0) == 0.05

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            WcetModel().duration(_task(), "cleanup", 0.3, 0)

    def test_plain_task_has_no_offload_phases(self):
        with pytest.raises(ValueError):
            WcetModel().duration(Task("p", 0.1, 1.0), "setup", 0.3, 0)


class TestUniformScaleModel:
    def test_bounded_by_wcet(self):
        model = UniformScaleModel(
            low_fraction=0.5, rng=np.random.default_rng(0)
        )
        task = _task()
        for j in range(50):
            d = model.duration(task, "local", 0.0, j)
            assert 0.1 <= d <= 0.2

    def test_zero_wcet_stays_zero(self):
        model = UniformScaleModel(rng=np.random.default_rng(0))
        task = OffloadableTask(
            task_id="o", wcet=0.2, period=1.0,
            setup_time=0.02, compensation_time=0.2, post_time=0.0,
        )
        assert model.duration(task, "post", 0.0, 0) == 0.0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            UniformScaleModel(low_fraction=0.0)
        with pytest.raises(ValueError):
            UniformScaleModel(low_fraction=1.5)

    def test_deterministic_with_seeded_rng(self):
        a = UniformScaleModel(rng=np.random.default_rng(7))
        b = UniformScaleModel(rng=np.random.default_rng(7))
        task = _task()
        assert a.duration(task, "local", 0.0, 0) == b.duration(
            task, "local", 0.0, 0
        )

"""Adversarial regression tests for float-dust deadline ties.

The bug class: two deadlines that are *analytically* equal but computed
through different arithmetic paths (``0.1 + 0.2`` vs ``0.3``) differ by
a few ULPs.  Keyed on raw floats, EDF would order them by accumulated
rounding error — spuriously preempting a running job, or flipping
dispatch order between platforms.  The fix quantizes every ordering key
onto the :data:`~repro.sim.timecmp.TIME_EPS` grid (a transitive total
order, unlike pairwise epsilon comparison) and breaks ties FIFO.
"""

import heapq

import pytest

from repro.core.task import Task
from repro.sched.jobs import Job, SubJob
from repro.sched.ready_queue import EDFReadyQueue
from repro.sched.uniprocessor import Uniprocessor
from repro.sim.engine import Simulator
from repro.sim.timecmp import (
    TIME_EPS,
    quantize_time,
    time_eq,
    time_le,
    time_lt,
)

#: The canonical dust pair: 0.1 + 0.2 == 0.30000000000000004 != 0.3.
DUSTY = 0.1 + 0.2
CLEAN = 0.3


def _subjob(deadline, remaining=0.2, task_id="t", job_id=0):
    task = Task(task_id, wcet=max(remaining, 1e-9), period=100.0)
    job = Job(task=task, job_id=job_id, release=0.0,
              absolute_deadline=deadline)
    return SubJob(
        job=job, phase="local", wcet=remaining, remaining=remaining,
        absolute_deadline=deadline, release=0.0,
    )


class TestQuantize:
    def test_dust_pair_collapses_to_one_grid_point(self):
        assert DUSTY != CLEAN  # the premise of the whole bug class
        assert quantize_time(DUSTY) == quantize_time(CLEAN)

    def test_comparators_agree_with_the_grid(self):
        assert time_eq(DUSTY, CLEAN)
        assert not time_lt(DUSTY, CLEAN)
        assert not time_lt(CLEAN, DUSTY)
        assert time_le(DUSTY, CLEAN) and time_le(CLEAN, DUSTY)

    def test_distinct_times_stay_distinct(self):
        assert quantize_time(0.3) < quantize_time(0.3 + 1e-6)
        assert time_lt(0.3, 0.3 + 1e-6)

    def test_infinity_passes_through(self):
        assert quantize_time(float("inf")) == float("inf")
        assert time_lt(1e12, float("inf"))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            quantize_time(float("nan"))

    def test_grid_is_a_total_order(self):
        """Pairwise-epsilon comparison is non-transitive; the grid key
        must be safe as a heap/sort key."""
        times = [CLEAN + k * (TIME_EPS / 3) for k in range(12)]
        keys = [quantize_time(t) for t in times]
        assert keys == sorted(keys)  # monotone in the raw value
        heap = list(zip(keys, times))
        heapq.heapify(heap)
        popped = [heapq.heappop(heap)[0] for _ in range(len(heap))]
        assert popped == sorted(popped)


class TestReadyQueueTies:
    def test_dust_tie_breaks_fifo(self):
        """The dust-later deadline submitted first must pop first."""
        queue = EDFReadyQueue()
        first = _subjob(DUSTY, task_id="first")
        second = _subjob(CLEAN, task_id="second")
        # Raw-float keys would pop `second` (0.3 < 0.30000000000000004).
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_genuinely_earlier_deadline_still_wins(self):
        queue = EDFReadyQueue()
        late = _subjob(CLEAN, task_id="late")
        early = _subjob(CLEAN - 1e-3, task_id="early")
        queue.push(late)
        queue.push(early)
        assert queue.pop() is early


class TestNoSpuriousPreemption:
    def test_dust_earlier_newcomer_does_not_preempt(self):
        """A running job with deadline 0.1+0.2 must not be preempted by
        a newcomer whose deadline is the dust-*smaller* 0.3."""
        sim = Simulator()
        cpu = Uniprocessor(sim)
        order = []
        running = _subjob(DUSTY, remaining=0.4, task_id="running")
        running.on_complete = lambda sj, t: order.append(sj.task_id)
        cpu.submit(running)
        sim.run_until(0.1)
        newcomer = _subjob(CLEAN, remaining=0.1, task_id="newcomer",
                           job_id=1)
        newcomer.on_complete = lambda sj, t: order.append(sj.task_id)
        cpu.submit(newcomer)
        sim.run_until(2.0)
        assert order == ["running", "newcomer"]
        assert cpu.trace.preemptions == 0

    def test_clearly_earlier_newcomer_still_preempts(self):
        sim = Simulator()
        cpu = Uniprocessor(sim)
        running = _subjob(10.0, remaining=0.4, task_id="running")
        cpu.submit(running)
        sim.run_until(0.1)
        cpu.submit(_subjob(1.0, remaining=0.1, task_id="urgent", job_id=1))
        sim.run_until(2.0)
        assert cpu.trace.preemptions == 1


class TestEngineClockMonotone:
    def test_dust_ordered_events_never_move_the_clock_backwards(self):
        """Quantized ordering can fire a raw-dust-earlier event after a
        dust-later one; the clock must clamp, not step back."""
        sim = Simulator()
        seen = []
        sim.schedule_at(DUSTY, lambda ev: seen.append(sim.now))
        sim.schedule_at(CLEAN, lambda ev: seen.append(sim.now))
        sim.run_until(1.0)
        assert len(seen) == 2
        assert seen[1] >= seen[0]  # monotone observable clock

    def test_fifo_among_dust_equal_events(self):
        sim = Simulator()
        order = []
        sim.schedule_at(DUSTY, lambda ev: order.append("first"))
        sim.schedule_at(CLEAN, lambda ev: order.append("second"))
        sim.run_until(1.0)
        assert order == ["first", "second"]

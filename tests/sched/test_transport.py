"""Unit tests for the test/stub transports."""

import numpy as np
import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask
from repro.sched.transport import (
    DistributionTransport,
    FixedLatencyTransport,
    NeverRespondsTransport,
    OffloadRequest,
)
from repro.sim.engine import Simulator


def _request(sim):
    task = OffloadableTask(
        task_id="o", wcet=0.1, period=1.0,
        setup_time=0.02, compensation_time=0.1,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(0.3, 1.0)]
        ),
    )
    return OffloadRequest(
        task=task, job_id=0, submitted_at=sim.now,
        response_budget=0.3, level_response_time=0.3,
    )


class TestFixedLatency:
    def test_result_arrives_after_latency(self, sim):
        transport = FixedLatencyTransport(sim, latency=0.25)
        arrivals = []
        transport.submit(_request(sim), arrivals.append)
        sim.run_until(1.0)
        assert arrivals == [0.25]
        assert transport.submitted == 1

    def test_negative_latency_rejected(self, sim):
        with pytest.raises(ValueError):
            FixedLatencyTransport(sim, latency=-1.0)


class TestDistribution:
    def test_sampler_drives_latency(self, sim):
        transport = DistributionTransport(sim, latency_sampler=lambda: 0.4)
        arrivals = []
        transport.submit(_request(sim), arrivals.append)
        sim.run_until(1.0)
        assert arrivals == [pytest.approx(0.4)]

    def test_negative_sample_rejected(self, sim):
        transport = DistributionTransport(sim, latency_sampler=lambda: -0.1)
        with pytest.raises(ValueError):
            transport.submit(_request(sim), lambda t: None)

    def test_loss_probability_drops_results(self, sim):
        transport = DistributionTransport(
            sim,
            latency_sampler=lambda: 0.01,
            loss_probability=1.0,
            rng=np.random.default_rng(0),
        )
        arrivals = []
        for _ in range(5):
            transport.submit(_request(sim), arrivals.append)
        sim.run_until(1.0)
        assert arrivals == []
        assert transport.lost == 5

    def test_invalid_loss_probability(self, sim):
        with pytest.raises(ValueError):
            DistributionTransport(
                sim, latency_sampler=lambda: 0.1, loss_probability=1.5
            )


class TestNeverResponds:
    def test_counts_but_never_calls_back(self, sim):
        transport = NeverRespondsTransport()
        arrivals = []
        transport.submit(_request(sim), arrivals.append)
        sim.run_until(100.0)
        assert arrivals == []
        assert transport.submitted == 1

"""Unit tests for job objects and the EDF ready queue."""

import pytest

from repro.core.task import Task
from repro.sched.jobs import Job, SubJob
from repro.sched.ready_queue import EDFReadyQueue


def _subjob(deadline, phase="local", remaining=0.1, priority=None):
    task = Task("t", wcet=0.5, period=10.0)
    job = Job(task=task, job_id=0, release=0.0, absolute_deadline=deadline)
    return SubJob(
        job=job,
        phase=phase,
        wcet=remaining,
        remaining=remaining,
        absolute_deadline=deadline,
        release=0.0,
        priority_override=priority,
    )


class TestSubJob:
    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="phase"):
            _subjob(1.0, phase="warmup")

    def test_negative_remaining_rejected(self):
        with pytest.raises(ValueError):
            _subjob(1.0, remaining=-0.1)

    def test_edf_key_orders_by_deadline(self):
        early, late = _subjob(1.0), _subjob(2.0)
        assert early.edf_key < late.edf_key

    def test_edf_key_fifo_on_equal_deadline(self):
        first, second = _subjob(1.0), _subjob(1.0)
        assert first.edf_key < second.edf_key

    def test_priority_override_takes_precedence(self):
        """Fixed-priority mode: a later deadline with higher priority
        (smaller override) wins."""
        fp_high = _subjob(9.0, priority=0.0)
        fp_low = _subjob(1.0, priority=5.0)
        assert fp_high.edf_key < fp_low.edf_key

    def test_task_id_passthrough(self):
        assert _subjob(1.0).task_id == "t"


class TestEDFReadyQueue:
    def test_pop_returns_earliest_deadline(self):
        q = EDFReadyQueue()
        a, b, c = _subjob(3.0), _subjob(1.0), _subjob(2.0)
        for sj in (a, b, c):
            q.push(sj)
        assert q.pop() is b
        assert q.pop() is c
        assert q.pop() is a

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EDFReadyQueue().pop()

    def test_peek_does_not_remove(self):
        q = EDFReadyQueue()
        sj = _subjob(1.0)
        q.push(sj)
        assert q.peek() is sj
        assert len(q) == 1

    def test_peek_empty_returns_none(self):
        assert EDFReadyQueue().peek() is None

    def test_len_and_bool(self):
        q = EDFReadyQueue()
        assert not q
        q.push(_subjob(1.0))
        assert q
        assert len(q) == 1

    def test_drain_returns_edf_order(self):
        q = EDFReadyQueue()
        deadlines = [5.0, 1.0, 3.0, 2.0]
        for d in deadlines:
            q.push(_subjob(d))
        drained = q.drain()
        assert [sj.absolute_deadline for sj in drained] == sorted(deadlines)
        assert not q

    def test_remove_excludes_subjob_from_pop(self):
        q = EDFReadyQueue()
        a, b, c = _subjob(1.0), _subjob(2.0), _subjob(3.0)
        for sj in (a, b, c):
            q.push(sj)
        assert q.remove(b) is True
        assert len(q) == 2
        assert q.pop() is a
        assert q.pop() is c
        assert not q

    def test_remove_head_updates_peek(self):
        q = EDFReadyQueue()
        a, b = _subjob(1.0), _subjob(2.0)
        q.push(a)
        q.push(b)
        assert q.remove(a)
        assert q.peek() is b

    def test_remove_unknown_returns_false(self):
        q = EDFReadyQueue()
        q.push(_subjob(1.0))
        assert q.remove(_subjob(2.0)) is False
        assert len(q) == 1

    def test_removed_subjob_can_be_requeued(self):
        q = EDFReadyQueue()
        sj = _subjob(1.0)
        q.push(sj)
        q.remove(sj)
        q.push(sj)  # lazy deletion must not shadow the re-push
        assert q.pop() is sj
        assert not q

    def test_duplicate_push_rejected(self):
        q = EDFReadyQueue()
        sj = _subjob(1.0)
        q.push(sj)
        with pytest.raises(ValueError):
            q.push(sj)

    def test_drain_skips_removed(self):
        q = EDFReadyQueue()
        subjobs = [_subjob(d) for d in (4.0, 1.0, 3.0, 2.0)]
        for sj in subjobs:
            q.push(sj)
        q.remove(subjobs[2])  # deadline 3.0
        drained = q.drain()
        assert [sj.absolute_deadline for sj in drained] == [1.0, 2.0, 4.0]

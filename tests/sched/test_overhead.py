"""Tests for context-switch overhead: processor behaviour + analysis
inflation, and their agreement."""

import pytest

from repro.core.schedulability import theorem3_test
from repro.core.task import Task, TaskSet
from repro.sched.jobs import Job, SubJob
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.overhead import inflate_for_overhead
from repro.sched.uniprocessor import Uniprocessor
from repro.sim.engine import Simulator
from repro.vision.tasks import table1_task_set


def _subjob(deadline, remaining, task_id="t", on_complete=None):
    task = Task(task_id, wcet=max(remaining, 1e-9), period=100.0)
    job = Job(task=task, job_id=0, release=0.0, absolute_deadline=deadline)
    return SubJob(
        job=job, phase="local", wcet=remaining, remaining=remaining,
        absolute_deadline=deadline, release=0.0, on_complete=on_complete,
    )


class TestProcessorOverhead:
    def test_single_dispatch_adds_one_overhead(self, sim):
        done = []
        cpu = Uniprocessor(sim, context_switch_overhead=0.01)
        cpu.submit(_subjob(10.0, 0.5, on_complete=lambda sj, t: done.append(t)))
        sim.run_until(1.0)
        assert done == [pytest.approx(0.51)]
        assert cpu.context_switches == 1

    def test_preemption_charges_both_jobs(self, sim):
        finish = {}
        cpu = Uniprocessor(sim, context_switch_overhead=0.01)
        cpu.submit(_subjob(10.0, 1.0, task_id="low",
                           on_complete=lambda sj, t: finish.update(low=t)))
        sim.schedule_at(
            0.3,
            lambda ev: cpu.submit(
                _subjob(1.0, 0.2, task_id="high",
                        on_complete=lambda sj, t: finish.update(high=t))
            ),
        )
        sim.run_until(3.0)
        # high: dispatched once (0.2 + 0.01) starting at 0.3
        assert finish["high"] == pytest.approx(0.51)
        # low: two dispatches (2 x 0.01) on 1.0 of work + the 0.21 gap
        assert finish["low"] == pytest.approx(1.23)
        assert cpu.context_switches == 3

    def test_zero_overhead_default_unchanged(self, sim):
        done = []
        cpu = Uniprocessor(sim)
        cpu.submit(_subjob(10.0, 0.5, on_complete=lambda sj, t: done.append(t)))
        sim.run_until(1.0)
        assert done == [pytest.approx(0.5)]
        assert cpu.context_switches == 0

    def test_negative_overhead_rejected(self, sim):
        with pytest.raises(ValueError):
            Uniprocessor(sim, context_switch_overhead=-0.01)


class TestInflation:
    def test_zero_overhead_is_identity(self):
        tasks = table1_task_set()
        assert inflate_for_overhead(tasks, 0.0) is tasks

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            inflate_for_overhead(table1_task_set(), -0.1)

    def test_all_budgets_inflated(self):
        tasks = table1_task_set()
        inflated = inflate_for_overhead(tasks, 0.005)
        for before, after in zip(tasks, inflated):
            assert after.wcet == pytest.approx(before.wcet + 0.01)
            assert after.setup_time == pytest.approx(
                before.setup_time + 0.01
            )
            for pb, pa in zip(before.benefit.points, after.benefit.points):
                if pb.setup_time is not None:
                    assert pa.setup_time == pytest.approx(
                        pb.setup_time + 0.01
                    )

    def test_plain_tasks_inflated(self):
        tasks = TaskSet([Task("p", 0.1, 1.0)])
        inflated = inflate_for_overhead(tasks, 0.01)
        assert inflated["p"].wcet == pytest.approx(0.12)


class TestAnalysisMatchesSimulation:
    def test_inflated_analysis_covers_overheaded_run(self):
        """If the inflated task set passes Theorem 3, the simulation
        with that overhead must meet all deadlines (WCET + dead server
        worst case)."""
        from repro.core.odm import OffloadingDecisionManager
        from repro.sched.transport import NeverRespondsTransport

        overhead = 0.002
        tasks = table1_task_set()
        inflated = inflate_for_overhead(tasks, overhead)
        decision = OffloadingDecisionManager("dp").decide(inflated)
        assert decision.schedulability.feasible

        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=NeverRespondsTransport(),
        )
        scheduler.processor.context_switch_overhead = overhead
        trace = scheduler.run(10.0)
        assert trace.all_deadlines_met

"""Unit tests for the observability primitives themselves."""

import json

import pytest

from repro.observability import (
    NULL_BUS,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRecorder,
    MetricsRegistry,
    Observability,
    Profiler,
    TraceBus,
    get_profiler,
    probe,
    profile_calls,
    profiled,
)


class TestTraceBus:
    def test_emit_records_in_order_with_monotone_seq(self):
        bus = TraceBus()
        bus.emit("a", 1.0, x=1)
        bus.emit("b", 0.5, y=2)
        events = bus.events()
        assert [ev.kind for ev in events] == ["a", "b"]
        assert [ev.seq for ev in events] == [0, 1]
        assert bus.emitted == 2 and bus.dropped == 0

    def test_disabled_bus_records_nothing(self):
        bus = TraceBus(enabled=False)
        bus.emit("a", 1.0)
        assert len(bus) == 0 and bus.emitted == 0

    def test_null_bus_is_disabled(self):
        assert not NULL_BUS.enabled
        NULL_BUS.emit("a", 1.0)
        assert len(NULL_BUS) == 0

    def test_ring_buffer_drops_oldest(self):
        bus = TraceBus(capacity=3)
        for i in range(5):
            bus.emit("tick", float(i), i=i)
        assert bus.emitted == 5
        assert bus.dropped == 2
        assert [ev.data["i"] for ev in bus] == [2, 3, 4]

    def test_clock_offset_shifts_timestamps(self):
        bus = TraceBus()
        bus.clock_offset = 10.0
        bus.emit("tick", 1.5)
        assert bus.events()[0].time == 11.5

    def test_subscribers_see_every_event(self):
        bus = TraceBus()
        seen = []
        bus.subscribe(lambda seq, time, kind, data: seen.append(kind))
        bus.emit("a", 0.0)
        bus.emit("b", 1.0)
        assert seen == ["a", "b"]

    def test_events_filter_by_kind(self):
        bus = TraceBus()
        bus.emit("a", 0.0)
        bus.emit("b", 1.0)
        bus.emit("a", 2.0)
        assert len(bus.events("a")) == 2

    def test_jsonl_round_trip(self):
        bus = TraceBus()
        bus.emit("job.release", 0.25, task="tau1", job=0, offloaded=True)
        bus.emit("job.finish", 1.0, task="tau1", job=0, benefit=3.5)
        text = bus.to_jsonl()
        header = json.loads(text.splitlines()[0])
        assert header == {"schema_version": SCHEMA_VERSION}
        rebuilt = TraceBus.from_jsonl(text)
        assert rebuilt.to_records() == bus.to_records()

    def test_jsonl_rejects_future_schema(self):
        text = json.dumps({"schema_version": SCHEMA_VERSION + 1}) + "\n"
        with pytest.raises(ValueError, match="schema version"):
            TraceBus.from_jsonl(text)


class TestMetrics:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_exact_percentiles(self):
        hist = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0
        assert hist.percentile(50) == pytest.approx(2.5)
        snap = hist.snapshot()
        assert snap["count"] == 4 and snap["mean"] == pytest.approx(2.5)

    def test_histogram_rejects_nan_and_empty_percentile(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.observe(float("nan"))
        with pytest.raises(ValueError):
            hist.percentile(50)

    def test_registry_type_checks_names(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_registry_labels_partition_series(self):
        reg = MetricsRegistry()
        reg.histogram("rt", {"task": "a"}).observe(1.0)
        reg.histogram("rt", {"task": "b"}).observe(9.0)
        assert reg.histogram("rt", {"task": "a"}).count == 1

    def test_csv_and_json_exports(self):
        reg = MetricsRegistry()
        reg.counter("jobs.completed").inc(3)
        reg.histogram("rt", {"task": "a"}).observe(1.0)
        as_json = json.loads(reg.to_json())
        assert {rec["name"] for rec in as_json} == {"jobs.completed", "rt"}
        csv_text = reg.to_csv()
        assert csv_text.splitlines()[0].startswith("name,kind,labels")
        assert "task=a" in csv_text


class TestRecorder:
    def test_folds_bus_events_into_metrics(self):
        bus = TraceBus()
        recorder = MetricsRecorder().attach(bus)
        bus.emit("job.release", 0.0, task="t", job=0)
        bus.emit("offload.send", 0.1, task="t", job=0, budget=0.5)
        bus.emit("offload.receive", 0.4, task="t", job=0,
                 latency=0.3, late=False)
        bus.emit("job.finish", 0.5, task="t", job=0, benefit=2.0,
                 response_time=0.5, compensated=False)
        reg = recorder.registry
        assert reg.counter("jobs.released").value == 1
        assert reg.counter("offload.returned").value == 1
        assert recorder.offload_success_ratio() == 1.0

    def test_late_receive_does_not_count_as_returned(self):
        bus = TraceBus()
        recorder = MetricsRecorder().attach(bus)
        bus.emit("offload.send", 0.0, task="t", job=0, budget=0.1)
        bus.emit("offload.receive", 5.0, task="t", job=0,
                 latency=5.0, late=True)
        assert recorder.registry.counter("offload.returned").value == 0
        assert recorder.offload_success_ratio() == 0.0

    def test_breaker_transitions(self):
        bus = TraceBus()
        recorder = MetricsRecorder().attach(bus)
        bus.emit("breaker.state", 1.0, window=0, old="closed", new="open")
        bus.emit("breaker.state", 2.0, window=1, old="open", new="closed")
        reg = recorder.registry
        assert reg.counter("breaker.trips").value == 1
        assert reg.counter("breaker.recoveries").value == 1
        assert reg.gauge("breaker.state").value == 0


class TestProfiler:
    def test_probe_no_op_without_active_profiler(self):
        assert get_profiler() is None
        with probe("anything"):
            pass  # must not raise nor record anywhere

    def test_profiled_context_collects_and_restores(self):
        with profiled() as prof:
            with probe("section"):
                pass
            assert get_profiler() is prof
        assert get_profiler() is None
        assert prof.to_dict()["section"]["count"] == 1

    def test_profile_calls_decorator(self):
        @profile_calls("fn")
        def fn(x):
            return x * 2

        assert fn(2) == 4  # inactive: plain call
        with profiled() as prof:
            assert fn(3) == 6
        assert prof.to_dict()["fn"]["count"] == 1

    def test_stats_aggregate(self):
        prof = Profiler()
        prof.record("x", 1.0)
        prof.record("x", 3.0)
        snap = prof.to_dict()["x"]
        assert snap["count"] == 2
        assert snap["total_s"] == pytest.approx(4.0)
        assert snap["mean_s"] == pytest.approx(2.0)
        assert snap["min_s"] == 1.0 and snap["max_s"] == 3.0


class TestObservabilityBundle:
    def test_disabled_is_free_default(self):
        obs = Observability.disabled()
        assert not obs.is_enabled
        assert obs.bus is NULL_BUS
        assert obs.profiler is None

    def test_enabled_wires_recorder_to_bus(self):
        obs = Observability.enabled()
        assert obs.is_enabled
        obs.bus.emit("job.release", 0.0, task="t", job=0)
        assert obs.metrics.counter("jobs.released").value == 1

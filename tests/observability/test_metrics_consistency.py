"""The metrics registry must agree with the system report.

Both derive from the same run — the report from the scheduler's
:class:`~repro.sim.trace.Trace`, the registry from the trace-bus event
stream — so any disagreement means an emission site is missing, double
counting, or misclassifying an event.
"""

import pytest

from repro.observability import Observability
from repro.runtime.system import OffloadingSystem
from repro.vision.tasks import table1_task_set

SCENARIOS = ["idle", "not_busy", "busy"]


def _run(seed, scenario, horizon=15.0):
    obs = Observability.enabled(capacity=None)
    report = OffloadingSystem(
        table1_task_set(),
        scenario=scenario,
        seed=seed,
        observability=obs,
    ).run(horizon=horizon)
    return obs, report


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("seed", [0, 5])
class TestRegistryMatchesReport:
    def test_job_counters(self, seed, scenario):
        obs, report = _run(seed, scenario)
        reg = obs.metrics
        assert reg.counter("jobs.completed").value == report.jobs_completed
        assert (
            reg.counter("jobs.deadline_misses").value
            == report.deadline_misses
        )
        assert reg.counter("jobs.benefit_realized").value == pytest.approx(
            report.realized_benefit
        )

    def test_offload_counters(self, seed, scenario):
        obs, report = _run(seed, scenario)
        reg = obs.metrics
        # Every offloaded job that *finished* was, at some point, sent.
        assert reg.counter("offload.sent").value >= report.offloaded_jobs
        assert reg.counter("offload.returned").value == report.returned_jobs
        assert (
            reg.counter("offload.compensated").value
            == report.compensated_jobs
        )

    def test_success_ratio_matches_return_rate(self, seed, scenario):
        obs, report = _run(seed, scenario)
        sent = obs.metrics.counter("offload.sent").value
        if sent and sent == report.offloaded_jobs:
            assert obs.recorder.offload_success_ratio() == pytest.approx(
                report.return_rate
            )

    def test_response_time_histogram_covers_every_finished_job(
        self, seed, scenario
    ):
        obs, report = _run(seed, scenario)
        observed = sum(
            rec["count"]
            for rec in obs.metrics.to_records()
            if rec["name"] == "response_time"
        )
        assert observed == report.jobs_completed

    def test_utilization_gauge_matches_trace(self, seed, scenario):
        obs, report = _run(seed, scenario)
        assert obs.metrics.gauge("run.utilization").value == pytest.approx(
            report.trace.utilization(report.horizon)
        )

"""Replay trace-bus streams and assert the paper's EDF invariants.

The bus is the ground truth of what the runtime *did*; these tests
re-derive the scheduler state machine from the event stream alone and
check, event by event:

1. **EDF dispatch** — no sub-job starts while a strictly
   earlier-deadline sub-job sits in the ready queue (quantized
   comparison: dust-equal deadlines are legitimate FIFO ties).
2. **Split deadline** (paper §5.1) — every ``setup`` sub-job finishes
   by its assigned absolute deadline ``release + D_{i,1}``.
3. **Compensation window** — compensation for job ``J`` only begins
   once its full suspension window ``R_i`` has elapsed after the
   offload request was sent (the LCM timer must never fire early).

The same replayer runs over a plain seeded run, over a JSONL round-trip
of that run (captured in one "process", re-checked from the serialized
form), and over a fault-injected windowed chaos run.
"""

import pytest

from repro.faults.chaos import build_profile_schedule
from repro.observability import Observability, TraceBus
from repro.runtime.health import ResilientOffloadingSystem
from repro.runtime.system import OffloadingSystem
from repro.sim.timecmp import quantize_time
from repro.vision.tasks import table1_task_set

#: Slack for comparing event times against data-carried deadlines that
#: went through different float paths (window offsets, budget sums).
TOL = 1e-6


class EDFReplay:
    """Rebuilds scheduler state from a bus stream, asserting as it goes.

    ``window_size`` maps the window-local ``deadline``/``budget`` data
    fields of windowed (chaos) runs onto the stream's global timeline:
    the runner emits one ``odm.decision`` per window carrying its index,
    and each window starts a fresh scheduler (so EDF state resets).
    """

    def __init__(self, window_size: float = 0.0) -> None:
        self.window_size = window_size
        self.offset = 0.0
        self.ready = {}    # (task, job, phase) -> quantized priority key
        self.running = None
        self.setup_deadline = {}   # (task, job) -> global setup deadline
        self.sent = {}             # (task, job) -> (global send time, R_i)
        self.checked_starts = 0
        self.checked_setups = 0
        self.checked_compensations = 0

    def replay(self, records):
        last_seq = -1
        for rec in records:
            assert rec["seq"] > last_seq, "bus seq must be monotonic"
            last_seq = rec["seq"]
            handler = getattr(
                self, "_on_" + rec["kind"].replace(".", "_"), None
            )
            if handler is not None:
                handler(rec)
        return self

    # -- window bookkeeping -------------------------------------------
    def _on_odm_decision(self, rec) -> None:
        if "window" in rec and self.window_size:
            self.offset = rec["window"] * self.window_size
            # each window builds a fresh engine + scheduler
            self.ready.clear()
            self.running = None
            self.setup_deadline.clear()
            self.sent.clear()

    # -- invariant 1: EDF dispatch ------------------------------------
    def _on_subjob_submit(self, rec) -> None:
        key = (rec["task"], rec["job"], rec["phase"])
        self.ready[key] = quantize_time(rec["priority_key"])
        if rec["phase"] == "setup":
            self.setup_deadline[(rec["task"], rec["job"])] = (
                rec["deadline"] + self.offset
            )

    def _on_subjob_start(self, rec) -> None:
        key = (rec["task"], rec["job"], rec["phase"])
        assert key in self.ready, f"start of unknown sub-job {key}"
        assert self.running is None, (
            f"{key} started while {self.running} is still running"
        )
        prio = self.ready.pop(key)
        for other, other_prio in self.ready.items():
            assert prio <= other_prio, (
                f"EDF violation at t={rec['time']:.6f}: started {key} "
                f"(key {prio}) while {other} (key {other_prio}) was ready"
            )
        self.running = (key, prio)
        self.checked_starts += 1

    def _on_subjob_preempt(self, rec) -> None:
        key = (rec["task"], rec["job"], rec["phase"])
        assert self.running is not None and self.running[0] == key, (
            f"preempt of {key} but running is {self.running}"
        )
        self.ready[key] = self.running[1]
        self.running = None

    def _on_subjob_finish(self, rec) -> None:
        key = (rec["task"], rec["job"], rec["phase"])
        if self.running is not None and self.running[0] == key:
            self.running = None
        else:
            # zero-length sub-jobs complete straight from submit
            self.ready.pop(key, None)
        if rec["phase"] == "setup":
            deadline = self.setup_deadline[(rec["task"], rec["job"])]
            assert rec["time"] <= deadline + TOL, (
                f"setup {key} finished at {rec['time']:.6f} after its "
                f"split deadline {deadline:.6f}"
            )
            self.checked_setups += 1

    # -- invariant 3: compensation window -----------------------------
    def _on_offload_send(self, rec) -> None:
        self.sent[(rec["task"], rec["job"])] = (rec["time"], rec["budget"])

    def _on_phase_transition(self, rec) -> None:
        if rec["to"] != "compensation":
            return
        sent_at, budget = self.sent[(rec["task"], rec["job"])]
        assert rec["time"] >= sent_at + budget - TOL, (
            f"compensation for {rec['task']}#{rec['job']} began at "
            f"{rec['time']:.6f}, before the R_i={budget} window after "
            f"send at {sent_at:.6f}"
        )
        self.checked_compensations += 1


def _observed_run(seed, scenario="idle", horizon=12.0, deadline_mode="split"):
    obs = Observability.enabled(capacity=None)
    OffloadingSystem(
        table1_task_set(),
        scenario=scenario,
        seed=seed,
        deadline_mode=deadline_mode,
        observability=obs,
    ).run(horizon=horizon)
    return obs


class TestSeededRuns:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("scenario", ["idle", "busy"])
    def test_invariants_hold(self, seed, scenario):
        obs = _observed_run(seed, scenario)
        replay = EDFReplay().replay(obs.bus.to_records())
        assert replay.checked_starts > 0, "stream contained no dispatches"
        assert replay.checked_setups > 0, "stream contained no offloads"

    def test_busy_scenario_exercises_compensation(self):
        # "busy" makes the server miss budgets, so the LCM timer fires.
        obs = _observed_run(seed=3, scenario="busy", horizon=20.0)
        replay = EDFReplay().replay(obs.bus.to_records())
        assert replay.checked_compensations > 0, (
            "expected at least one compensation on the busy scenario"
        )

    def test_invariants_hold_after_jsonl_round_trip(self):
        """A trace captured in one process can be re-checked from disk."""
        obs = _observed_run(seed=0)
        text = obs.bus.to_jsonl()
        rebuilt = TraceBus.from_jsonl(text)
        assert len(rebuilt) == len(obs.bus)
        replay = EDFReplay().replay(rebuilt.to_records())
        assert replay.checked_starts > 0


class TestChaosRun:
    def test_invariants_hold_under_fault_injection(self):
        """The acceptance run: seeded chaos, replayable log, invariants."""
        window, num_windows = 3.0, 5
        obs = Observability.enabled(capacity=None)
        schedule = build_profile_schedule(
            "random", horizon=window * num_windows, seed=11
        )
        system = ResilientOffloadingSystem(
            table1_task_set(),
            scenario="idle",
            seed=11,
            window=window,
            fault_schedule=schedule,
            observability=obs,
        )
        system.run(num_windows=num_windows)
        records = TraceBus.from_jsonl(obs.bus.to_jsonl()).to_records()
        replay = EDFReplay(window_size=window).replay(records)
        assert replay.checked_starts > 0
        assert replay.checked_setups > 0

"""Schema regression for every committed ``BENCH_*.json`` artifact.

The BENCH files are the repo's performance/correctness ledger: CI jobs
and the README point at their fields, so a key silently renamed or
dropped breaks downstream readers long after the producing PR merged.
This suite walks the repo root and pins, per artifact, the top-level
keys a consumer may rely on — and refuses BENCH files it has never
heard of, so adding an artifact forces adding its schema here.
"""

import json
import pathlib

import pytest

ROOT = pathlib.Path(__file__).parent.parent

#: artifact name -> top-level keys consumers rely on (subset check:
#: producers may add keys, never drop or rename these).
REQUIRED_KEYS = {
    "BENCH_perf.json": {
        "benchmark", "seed", "workers", "quick",
        "dp", "dp_speedup_target", "fig3", "fig3_speedup_target",
        "estimator", "differential", "differential_ok", "targets_met",
    },
    "BENCH_service.json": {
        "requests", "admitted", "rejected", "shed", "bursts",
        "rungs_seen", "breaker_opened", "breaker_reclosed",
        "anomaly_count", "anomalies", "ok", "latency", "stats",
    },
    "BENCH_fleet.json": {
        "requests", "admitted", "rejected", "shed", "bursts",
        "replicas", "router", "gossip", "served_by", "recovery",
        "chaos_events", "link_chaos", "remote_trips", "shed_rate",
        "dedup_hits", "duplicate_deliveries", "unrouted",
        "rungs_seen", "breaker_opened", "breaker_reclosed",
        "anomaly_count", "anomalies", "ok", "latency", "wall_seconds",
    },
    "BENCH_observability.json": {
        "benchmark", "headline", "profile", "stress", "estimator",
        "emit_ns_per_event", "emit_plus_fold_ns_per_event",
        "guard_ns_per_check", "overhead_disabled_aa", "overhead_enabled",
        "max_enabled_overhead", "max_stress_overhead", "within_budget",
    },
    "BENCH_campaign.json": {
        "schema", "seed", "cells", "replications", "instances",
        "resolution", "energy_weight", "workers", "mode", "axis_names",
        "totals", "marginals", "audit", "ok",
        "serial_parallel_identical", "wall_seconds",
    },
}


def bench_files():
    return sorted(ROOT.glob("BENCH_*.json"))


def test_every_registered_artifact_is_committed():
    present = {p.name for p in bench_files()}
    assert present == set(REQUIRED_KEYS), (
        "BENCH artifacts and the schema registry drifted apart; "
        f"on disk: {sorted(present)}"
    )


@pytest.mark.parametrize("name", sorted(REQUIRED_KEYS))
def test_artifact_keeps_its_required_keys(name):
    path = ROOT / name
    data = json.loads(path.read_text())
    missing = REQUIRED_KEYS[name] - set(data)
    assert not missing, f"{name} lost required keys: {sorted(missing)}"


def test_campaign_artifact_invariants():
    """The campaign ledger must record a clean, verified run."""
    data = json.loads((ROOT / "BENCH_campaign.json").read_text())
    assert data["schema"] == 1
    assert data["instances"] >= 1000
    assert data["ok"] is True
    assert data["audit"]["anomaly_count"] == 0
    assert data["serial_parallel_identical"] is True
    assert set(data["marginals"]) == set(data["axis_names"])
    for axis, per in data["marginals"].items():
        assert per, f"axis {axis} has no marginals"
        assert sum(m["instances"] for m in per.values()) == (
            data["instances"]
        )

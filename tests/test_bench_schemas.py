"""Schema regression for every committed ``BENCH_*.json`` artifact.

The BENCH files are the repo's performance/correctness ledger: CI jobs
and the README point at their fields, so a key silently renamed or
dropped breaks downstream readers long after the producing PR merged.
This suite walks the repo root and pins, per artifact, the top-level
keys a consumer may rely on — and refuses BENCH files it has never
heard of, so adding an artifact forces adding its schema here.
"""

import json
import pathlib

import pytest

ROOT = pathlib.Path(__file__).parent.parent

#: artifact name -> top-level keys consumers rely on (subset check:
#: producers may add keys, never drop or rename these).
REQUIRED_KEYS = {
    "BENCH_perf.json": {
        "benchmark", "seed", "workers", "quick",
        "dp", "dp_speedup_target", "fig3", "fig3_speedup_target",
        "estimator", "differential", "differential_ok", "targets_met",
    },
    "BENCH_service.json": {
        "requests", "admitted", "rejected", "shed", "bursts",
        "rungs_seen", "breaker_opened", "breaker_reclosed",
        "anomaly_count", "anomalies", "ok", "latency", "stats",
    },
    "BENCH_fleet.json": {
        "requests", "admitted", "rejected", "shed", "bursts",
        "replicas", "router", "gossip", "served_by", "recovery",
        "chaos_events", "link_chaos", "remote_trips", "shed_rate",
        "dedup_hits", "duplicate_deliveries", "unrouted",
        "rungs_seen", "breaker_opened", "breaker_reclosed",
        "anomaly_count", "anomalies", "ok", "latency", "wall_seconds",
    },
    "BENCH_fleet_scale.json": {
        "cells", "restart_comparison", "anomaly_count",
        "duplicate_deliveries", "ok", "wall_seconds",
    },
    "BENCH_observability.json": {
        "benchmark", "headline", "profile", "stress", "estimator",
        "emit_ns_per_event", "emit_plus_fold_ns_per_event",
        "guard_ns_per_check", "overhead_disabled_aa", "overhead_enabled",
        "max_enabled_overhead", "max_stress_overhead", "within_budget",
    },
    "BENCH_campaign.json": {
        "schema", "seed", "cells", "replications", "instances",
        "resolution", "energy_weight", "workers", "mode", "axis_names",
        "totals", "marginals", "audit", "ok",
        "serial_parallel_identical", "wall_seconds",
    },
    "BENCH_topology.json": {
        "schema", "seed", "cells", "replications", "instances",
        "resolution", "num_samples", "workers", "mode", "axis_names",
        "totals", "marginals", "audit", "stats", "ok",
        "serial_parallel_identical", "wall_seconds",
    },
}


def bench_files():
    return sorted(ROOT.glob("BENCH_*.json"))


def test_every_registered_artifact_is_committed():
    present = {p.name for p in bench_files()}
    assert present == set(REQUIRED_KEYS), (
        "BENCH artifacts and the schema registry drifted apart; "
        f"on disk: {sorted(present)}"
    )


@pytest.mark.parametrize("name", sorted(REQUIRED_KEYS))
def test_artifact_keeps_its_required_keys(name):
    path = ROOT / name
    data = json.loads(path.read_text())
    missing = REQUIRED_KEYS[name] - set(data)
    assert not missing, f"{name} lost required keys: {sorted(missing)}"


def test_fleet_scale_artifact_invariants():
    """The scale sweep must be clean and the warm restart must win."""
    data = json.loads((ROOT / "BENCH_fleet_scale.json").read_text())
    assert data["ok"] is True
    assert data["anomaly_count"] == 0
    assert data["duplicate_deliveries"] == 0
    cells = data["cells"]
    assert len(cells) >= 9
    assert len({c["replicas"] for c in cells}) >= 3
    assert len({c["rate_multiplier"] for c in cells}) >= 3
    restart = data["restart_comparison"]
    assert restart["warm_better"] is True
    warm, cold = restart["warm"], restart["cold"]
    assert warm["post_restart_hit_rate"] > cold["post_restart_hit_rate"]
    assert (
        warm["time_back_to_steady_p99"]
        < cold["time_back_to_steady_p99"]
    )
    # the win must come from actual replication, not luck
    assert warm["sync"]["entries"] > 0
    assert warm["replicated_in"] > 0
    assert cold["replicated_in"] == 0


def test_unified_replica_cache_stats_schema():
    """Every replica cache block in every fleet/service artifact
    carries the one shared 9-key stats schema (see SolverCache.stats),
    so attribution fields can be compared across artifacts."""
    cache_keys = {
        "hits", "misses", "near_hits", "hits_local",
        "hits_replicated", "replicated_in", "replicated_states_in",
        "entries", "delta_states",
    }

    service = json.loads((ROOT / "BENCH_service.json").read_text())
    assert cache_keys <= set(service["stats"]["cache"])

    fleet = json.loads((ROOT / "BENCH_fleet.json").read_text())
    assert fleet["replicas"]
    for replica_id, stats in fleet["replicas"].items():
        assert cache_keys <= set(stats["cache"]), replica_id

    scale = json.loads((ROOT / "BENCH_fleet_scale.json").read_text())
    for cell in scale["cells"]:
        attribution = set(cell["cache_attribution"])
        assert {"hits_local", "hits_replicated", "misses"} <= attribution

    topology = json.loads((ROOT / "BENCH_topology.json").read_text())
    assert cache_keys <= set(topology["stats"]["cache"])


def test_campaign_artifact_invariants():
    """The campaign ledger must record a clean, verified run."""
    data = json.loads((ROOT / "BENCH_campaign.json").read_text())
    assert data["schema"] == 1
    assert data["instances"] >= 1000
    assert data["ok"] is True
    assert data["audit"]["anomaly_count"] == 0
    assert data["serial_parallel_identical"] is True
    assert set(data["marginals"]) == set(data["axis_names"])
    for axis, per in data["marginals"].items():
        assert per, f"axis {axis} has no marginals"
        assert sum(m["instances"] for m in per.values()) == (
            data["instances"]
        )


def test_topology_artifact_invariants():
    """The topology sweep ledger: clean, verified, and wide enough —
    at least 3 server counts x at least 2 link qualities, with every
    routed instance audited and zero anomalies."""
    data = json.loads((ROOT / "BENCH_topology.json").read_text())
    assert data["schema"] == 1
    assert data["ok"] is True
    assert data["audit"]["anomaly_count"] == 0
    assert data["audit"]["anomalies"] == []
    assert data["serial_parallel_identical"] is True
    assert set(data["marginals"]) == set(data["axis_names"])
    assert len(data["marginals"]["servers"]) >= 3
    assert len(data["marginals"]["link"]) >= 2
    for axis, per in data["marginals"].items():
        assert sum(m["instances"] for m in per.values()) == (
            data["instances"]
        )
    audit = data["audit"]
    assert audit["reference_checks"] == data["instances"]
    assert audit["single_server_checks"] > 0
    assert audit["prune_checks"] > 0
    assert audit["recovery_checks"] == audit["prune_checks"]
    assert audit["federation_checks"] > 0

"""Scenario generation: distributions, ranges, RNG-input uniformity."""

import math

import numpy as np
import pytest

from repro.core.task import OffloadableTask
from repro.scenarios import ScenarioSpec, generate_scenario
from repro.scenarios.generator import UTIL_DISTS, partition_utilization
from repro.workloads.io import task_set_to_dict


class TestPartitionUtilization:
    @pytest.mark.parametrize("dist", UTIL_DISTS)
    def test_partitions_sum_to_cap(self, dist):
        spec = ScenarioSpec(num_tasks=10, util_dist=dist, util_cap=0.8)
        us = partition_utilization(7, spec)
        assert len(us) == 10
        assert all(u > 0 for u in us)
        assert math.isclose(sum(us), 0.8, rel_tol=1e-9)

    def test_overload_cap_supported(self):
        spec = ScenarioSpec(num_tasks=6, util_dist="bimodal", util_cap=1.3)
        assert math.isclose(
            sum(partition_utilization(0, spec)), 1.3, rel_tol=1e-9
        )

    def test_unknown_dist_rejected_by_spec(self):
        with pytest.raises(ValueError, match="util_dist"):
            ScenarioSpec(util_dist="zipf")


class TestGenerateScenario:
    def test_structure_and_ranges(self):
        spec = ScenarioSpec(
            num_tasks=8,
            util_cap=0.7,
            deadline_ratio=(0.7, 1.0),
            period_range=(0.05, 1.0),
        )
        tasks = generate_scenario(spec, 42)
        assert len(tasks) == 8
        total_util = 0.0
        for task in tasks:
            assert isinstance(task, OffloadableTask)
            assert 0.05 <= task.period <= 1.0
            assert 0.7 * task.period - 1e-12 <= task.deadline
            assert task.deadline <= task.period + 1e-12
            assert task.wcet <= 0.95 * task.deadline + 1e-12
            total_util += task.wcet / task.period
        # clamping sheds utilization; the 1e-6 wcet floor can add at
        # most n·1e-6/min_period back
        assert total_util <= 0.7 + 1e-3

    def test_benefit_points_inside_deadline_fraction(self):
        spec = ScenarioSpec(
            num_tasks=5, response_time_fraction=(0.1, 0.6)
        )
        for task in generate_scenario(spec, 3):
            offload = [p for p in task.benefit.points if not p.is_local]
            assert offload
            for p in offload:
                assert 0.1 * task.deadline <= p.response_time
                assert p.response_time <= 0.6 * task.deadline
            benefits = [p.benefit for p in task.benefit.points]
            assert benefits == sorted(benefits)

    def test_every_point_carries_energy(self):
        for task in generate_scenario(ScenarioSpec(num_tasks=4), 0):
            for p in task.benefit.points:
                assert p.energy is not None
                assert p.energy >= 0

    def test_guaranteed_spec_sets_server_bound_at_top_level(self):
        spec = ScenarioSpec(num_tasks=5, guaranteed=True)
        for task in generate_scenario(spec, 11):
            top = task.benefit.points[-1].response_time
            assert task.server_response_bound == pytest.approx(top)
        plain = generate_scenario(
            ScenarioSpec(num_tasks=5, guaranteed=False), 11
        )
        assert all(t.server_response_bound is None for t in plain)

    def test_harmonic_periods_are_powers_of_two_of_base(self):
        spec = ScenarioSpec(
            num_tasks=12,
            period_dist="harmonic",
            harmonic_base=0.05,
            period_range=(0.05, 1.0),
        )
        for task in generate_scenario(spec, 5):
            k = math.log2(task.period / 0.05)
            assert abs(k - round(k)) < 1e-9
            assert 0.05 <= task.period <= 1.0

    def test_rng_inputs_are_interchangeable(self):
        """int, SeedSequence and Generator seeds produce identical sets."""
        spec = ScenarioSpec(num_tasks=6)
        by_int = generate_scenario(spec, 123)
        by_ss = generate_scenario(spec, np.random.SeedSequence(123))
        by_gen = generate_scenario(
            spec,
            np.random.Generator(np.random.PCG64(np.random.SeedSequence(123))),
        )
        assert (
            task_set_to_dict(by_int)
            == task_set_to_dict(by_ss)
            == task_set_to_dict(by_gen)
        )

    def test_rejects_garbage_rng(self):
        with pytest.raises(TypeError):
            generate_scenario(ScenarioSpec(), "not-an-rng")


class TestWorkloadsReExport:
    def test_scenario_names_reachable_from_workloads(self):
        import repro.workloads as workloads

        assert workloads.ScenarioSpec is ScenarioSpec
        assert workloads.generate_scenario is generate_scenario
        axis = workloads.util_cap_axis((0.5,))
        assert axis.labels() == ("u0.5",)
        assert "ScenarioSpec" in dir(workloads)

    def test_unknown_attribute_still_raises(self):
        import repro.workloads as workloads

        with pytest.raises(AttributeError):
            workloads.does_not_exist

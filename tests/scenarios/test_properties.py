"""Hypothesis properties of the scenario generator and energy objective.

Three families:

* **structural** — every generated scenario respects its spec: the
  utilization partition honors the cap, periods stay in range,
  deadlines obey the ratio model, benefit functions are monotone with
  response times inside the configured deadline fraction;
* **admission equivalence** — an energy-blended objective changes MCKP
  item *values* only, so the blended instance must have exactly the
  plain instance's weights, and the blend must never admit a set the
  plain ODM + Theorem 3 would reject (nor vice versa);
* **guarantee** — any selection either objective produces satisfies the
  Theorem 3 demand-rate bound.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.odm import build_mckp
from repro.knapsack import solve_dp
from repro.scenarios import (
    EnergyObjective,
    ScenarioSpec,
    generate_scenario,
)
from repro.scenarios.generator import (
    PERIOD_DISTS,
    UTIL_DISTS,
    partition_utilization,
)

specs = st.builds(
    ScenarioSpec,
    num_tasks=st.integers(min_value=2, max_value=8),
    util_dist=st.sampled_from(UTIL_DISTS),
    util_cap=st.floats(min_value=0.2, max_value=1.2),
    period_dist=st.sampled_from(PERIOD_DISTS),
    deadline_ratio=st.sampled_from([(1.0, 1.0), (0.7, 1.0), (0.5, 0.9)]),
    guaranteed=st.booleans(),
    num_benefit_points=st.integers(min_value=1, max_value=4),
    benefit_shape=st.sampled_from(["concave", "linear"]),
    energy_profile=st.sampled_from(["balanced", "radio_heavy"]),
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(spec=specs, seed=seeds)
def test_partition_respects_cap(spec, seed):
    us = partition_utilization(seed, spec)
    assert len(us) == spec.num_tasks
    assert all(u > 0 for u in us)
    assert math.isclose(sum(us), spec.util_cap, rel_tol=1e-9)


@given(spec=specs, seed=seeds)
@settings(max_examples=60)
def test_generated_scenarios_respect_spec(spec, seed):
    tasks = generate_scenario(spec, seed)
    assert len(tasks) == spec.num_tasks
    lo, hi = spec.period_range
    dlo, _ = spec.deadline_ratio
    flo, fhi = spec.response_time_fraction
    for task in tasks:
        assert lo - 1e-12 <= task.period <= hi + 1e-12
        assert dlo * task.period - 1e-9 <= task.deadline
        assert task.deadline <= task.period + 1e-12
        assert 0 < task.wcet <= 0.95 * task.deadline + 1e-12
        benefits = [p.benefit for p in task.benefit.points]
        assert benefits == sorted(benefits)  # monotone in response time
        for p in task.benefit.points:
            assert p.energy is not None and p.energy >= 0.0
            if not p.is_local:
                assert flo * task.deadline - 1e-12 <= p.response_time
                assert p.response_time <= fhi * task.deadline + 1e-12
        if spec.guaranteed:
            assert task.server_response_bound is not None


@given(
    spec=specs,
    seed=seeds,
    energy_weight=st.floats(min_value=0.0, max_value=50.0),
)
@settings(max_examples=60)
def test_energy_objective_preserves_admissibility(
    spec, seed, energy_weight
):
    """The blend may trade benefit for energy, never deadlines: the
    blended instance shares the plain instance's weights, both solve to
    the same feasibility, and any optimum obeys Theorem 3."""
    tasks = generate_scenario(spec, seed)
    plain = build_mckp(tasks)
    blended = build_mckp(
        tasks,
        objective=EnergyObjective(
            benefit_weight=1.0, energy_weight=energy_weight
        ),
    )
    assert blended.capacity == plain.capacity
    for p_cls, b_cls in zip(plain.classes, blended.classes):
        assert p_cls.class_id == b_cls.class_id
        assert [i.weight for i in p_cls.items] == (
            [i.weight for i in b_cls.items]
        )
        assert [i.tag for i in p_cls.items] == (
            [i.tag for i in b_cls.items]
        )

    plain_sel = solve_dp(plain, resolution=1_000)
    blend_sel = solve_dp(blended, resolution=1_000)
    assert (plain_sel is None) == (blend_sel is None)
    for selection, instance in (
        (plain_sel, plain), (blend_sel, blended)
    ):
        if selection is not None:
            assert selection.total_weight <= instance.capacity + 1e-9

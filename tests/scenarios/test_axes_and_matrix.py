"""Axis and matrix structure: validation, subsetting, expansion."""

import pytest

from repro.scenarios import (
    AxisPoint,
    CampaignMatrix,
    ScenarioAxis,
    ScenarioSpec,
    default_matrix,
    overhead_axis,
    smoke_matrix,
    util_cap_axis,
    util_dist_axis,
)


class TestAxisPoint:
    def test_of_builds_sorted_hashable_updates(self):
        p = AxisPoint.of("x", util_dist="uniform", util_cap=0.9)
        assert p.updates == (("util_cap", 0.9), ("util_dist", "uniform"))
        assert p.as_dict() == {"util_dist": "uniform", "util_cap": 0.9}
        assert hash(p) == hash(AxisPoint.of("x", util_cap=0.9,
                                            util_dist="uniform"))

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError, match="label"):
            AxisPoint.of("")


class TestScenarioAxis:
    def test_needs_at_least_one_point(self):
        with pytest.raises(ValueError, match="at least one point"):
            ScenarioAxis("empty", ())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioAxis(
                "a",
                (AxisPoint.of("p", util_cap=0.5),
                 AxisPoint.of("p", util_cap=0.7)),
            )

    def test_points_must_cover_same_fields(self):
        with pytest.raises(ValueError, match="must cover the same fields"):
            ScenarioAxis(
                "a",
                (AxisPoint.of("p", util_cap=0.5, util_dist="uniform"),
                 AxisPoint.of("q", util_cap=0.7)),
            )

    def test_labels_preserve_order(self):
        axis = util_cap_axis((0.5, 0.9, 0.7))
        assert axis.labels() == ("u0.5", "u0.9", "u0.7")
        assert len(axis) == 3

    def test_subset_reorders_and_restricts(self):
        axis = overhead_axis().subset(["guaranteed", "paper"])
        assert axis.labels() == ("guaranteed", "paper")
        assert axis.name == "overhead"

    def test_subset_unknown_label(self):
        with pytest.raises(KeyError, match="no points"):
            overhead_axis().subset(["nope"])


class TestCampaignMatrix:
    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis names"):
            CampaignMatrix(
                base=ScenarioSpec(),
                axes=(util_cap_axis((0.5,)), util_cap_axis((0.7,))),
            )

    def test_overlapping_fields_rejected(self):
        clash = ScenarioAxis(
            "cap2", (AxisPoint.of("again", util_cap=0.8),)
        )
        with pytest.raises(ValueError, match="both set"):
            CampaignMatrix(
                base=ScenarioSpec(),
                axes=(util_cap_axis((0.5,)), clash),
            )

    def test_expansion_is_full_cross_product(self):
        matrix = CampaignMatrix(
            base=ScenarioSpec(num_tasks=4),
            axes=(util_dist_axis(("uunifast", "bimodal")),
                  util_cap_axis((0.5, 0.7, 0.9))),
        )
        assert matrix.num_cells == 6
        cells = matrix.cells()
        assert len(cells) == 6
        combos = {
            (spec.util_dist, spec.util_cap) for spec in cells
        }
        assert combos == {
            (d, c)
            for d in ("uunifast", "bimodal")
            for c in (0.5, 0.7, 0.9)
        }

    def test_cells_record_provenance_labels(self):
        matrix = smoke_matrix()
        for spec in matrix.cells():
            assert [a for a, _ in spec.axis_labels] == list(
                matrix.axis_names()
            )
            assert "=" in spec.describe()

    def test_default_matrix_reaches_campaign_scale(self):
        matrix = default_matrix()
        assert matrix.num_cells == 1536
        assert matrix.num_cells >= 1000

    def test_smoke_matrix_is_small_and_bursty(self):
        matrix = smoke_matrix()
        assert matrix.num_cells == 16
        assert matrix.base.burst_rate > 0
        assert matrix.base.burst_windows > 0
        caps = {spec.util_cap for spec in matrix.cells()}
        assert 1.05 in caps  # the overload regime is covered

"""Energy model, annotation, objective, and the energy-rate guarantee."""

import math
from dataclasses import replace

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.odm import OffloadingDecisionManager, build_mckp
from repro.core.task import Task, TaskSet
from repro.knapsack import solve_dp
from repro.runtime.energy import PowerModel
from repro.scenarios import (
    ENERGY_PROFILES,
    EnergyModel,
    EnergyObjective,
    ScenarioSpec,
    attach_energy,
    decision_energy_rate,
    generate_scenario,
)
from repro.scenarios.energy import resolve_profile


class TestEnergyModel:
    def test_local_energy_is_active_power_times_wcet(self, offload_task):
        model = EnergyModel(power=PowerModel(active_power=2.0))
        assert model.local_energy(offload_task) == pytest.approx(
            2.0 * offload_task.wcet
        )

    def test_offload_energy_formula(self, offload_task):
        model = EnergyModel(
            power=PowerModel(active_power=1.0, tx_power=0.5),
            listen_power=0.2,
        )
        point = offload_task.benefit.points[-1]  # r=0.30, G=5 of 5 -> p=1
        p = model.success_probability(offload_task, point)
        assert p == pytest.approx(1.0)
        expected = (
            (1.0 + 0.5) * offload_task.setup_time
            + 0.2 * point.response_time
            + 1.0 * (p * offload_task.post_time
                     + (1 - p) * offload_task.compensation_time)
        )
        assert model.offload_energy(offload_task, point) == pytest.approx(
            expected
        )

    def test_success_probability_normalizes_benefit(self, offload_task):
        model = EnergyModel()
        mid = offload_task.benefit.points[1]  # G=2 of max 5
        assert model.success_probability(offload_task, mid) == (
            pytest.approx(2.0 / 5.0)
        )

    def test_guaranteed_point_has_probability_one(self, offload_task):
        bounded = replace(offload_task, server_response_bound=0.05)
        model = EnergyModel()
        for point in bounded.benefit.points[1:]:
            assert model.success_probability(bounded, point) == 1.0

    def test_point_energy_local_point_prices_local(self, offload_task):
        model = EnergyModel()
        local = offload_task.benefit.points[0]
        assert model.point_energy(offload_task, local) == (
            pytest.approx(model.local_energy(offload_task))
        )


class TestProfilesAndAttach:
    def test_known_profiles_resolve(self):
        for name in ("balanced", "radio_heavy", "cpu_heavy"):
            assert name in ENERGY_PROFILES
            assert resolve_profile(name) is ENERGY_PROFILES[name]
        model = EnergyModel()
        assert resolve_profile(model) is model

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown energy profile"):
            resolve_profile("solar")

    def test_attach_energy_prices_every_point(self, small_task_set):
        priced = attach_energy(small_task_set, "balanced")
        off = priced["off1"]
        assert all(p.energy is not None for p in off.benefit.points)
        # plain tasks pass through untouched
        assert priced["loc1"] is small_task_set["loc1"]

    def test_attach_energy_keeps_measured_values(self, offload_task):
        measured = replace(
            offload_task,
            benefit=BenefitFunction(
                [
                    BenefitPoint(0.0, 1.0, energy=9.0),
                    BenefitPoint(0.1, 2.0),
                ]
            ),
        )
        priced = attach_energy(TaskSet([measured]), "balanced")
        points = priced["off1"].benefit.points
        assert points[0].energy == 9.0  # measured beats the model
        assert points[1].energy is not None


class TestEnergyObjective:
    def test_weights_must_be_non_negative(self):
        with pytest.raises(ValueError):
            EnergyObjective(energy_weight=-1.0)

    def test_zero_energy_weight_matches_plain_reduction(
        self, small_task_set
    ):
        priced = attach_energy(small_task_set, "balanced")
        plain = build_mckp(priced)
        blended = build_mckp(
            priced, objective=EnergyObjective(energy_weight=0.0)
        )
        for p_cls, b_cls in zip(plain.classes, blended.classes):
            for p_item, b_item in zip(p_cls.items, b_cls.items):
                assert b_item.value == pytest.approx(p_item.value)
                assert b_item.weight == p_item.weight

    def test_values_price_energy_as_rate(self, offload_task):
        priced = attach_energy(TaskSet([offload_task]), "balanced")
        task = priced["off1"]
        objective = EnergyObjective(benefit_weight=1.0, energy_weight=2.0)
        point = task.benefit.points[-1]
        expected = point.benefit * task.weight - 2.0 * (
            point.energy / task.period
        )
        assert objective.offload_value(task, point) == pytest.approx(
            expected
        )
        local = task.benefit.points[0]
        expected_local = task.benefit.local_benefit * task.weight - 2.0 * (
            local.energy / task.period
        )
        assert objective.local_value(task) == pytest.approx(expected_local)

    def test_objective_never_changes_weights(self, small_task_set):
        priced = attach_energy(small_task_set, "balanced")
        plain = build_mckp(priced)
        blended = build_mckp(
            priced, objective=EnergyObjective(energy_weight=50.0)
        )
        for p_cls, b_cls in zip(plain.classes, blended.classes):
            assert [i.weight for i in p_cls.items] == (
                [i.weight for i in b_cls.items]
            )


class TestDecisionEnergyRate:
    def test_matches_manual_sum(self, offload_task, local_task):
        model = EnergyModel()
        tasks = attach_energy(
            TaskSet([offload_task, local_task]), model
        )
        off = tasks["off1"]
        r = off.benefit.points[-1].response_time
        rate = decision_energy_rate(
            tasks, {"off1": r, "loc1": 0.0}, model=model
        )
        expected = (
            off.benefit.points[-1].energy / off.period
            + model.local_energy(local_task) / local_task.period
        )
        assert rate == pytest.approx(expected)

    def test_rejects_offloading_a_plain_task(self, small_task_set):
        with pytest.raises(ValueError, match="not offloadable"):
            decision_energy_rate(small_task_set, {"loc1": 0.5})

    def test_accepts_decision_objects(self, small_task_set):
        priced = attach_energy(small_task_set, "balanced")
        odm = OffloadingDecisionManager()
        decision = odm.decide(priced)
        rate = decision_energy_rate(priced, decision)
        assert rate == pytest.approx(
            decision_energy_rate(priced, decision.response_times)
        )


class TestEnergyRateGuarantee:
    """The exchange-argument invariant the objective's docstring claims:

    plain and blended instances share weights, hence feasible
    selections; pricing energy as the reported rate then makes the
    blended optimum's total energy rate <= the benefit-only optimum's.
    """

    @pytest.mark.parametrize("profile", ["balanced", "radio_heavy"])
    @pytest.mark.parametrize("seed", range(6))
    def test_blend_never_increases_energy_rate(self, profile, seed):
        spec = ScenarioSpec(
            num_tasks=6, num_benefit_points=3, energy_profile=profile
        )
        tasks = generate_scenario(spec, seed)
        plain = solve_dp(build_mckp(tasks), resolution=2_000)
        objective = EnergyObjective(
            benefit_weight=1.0, energy_weight=5.0
        )
        blended_instance = build_mckp(tasks, objective=objective)
        blend = solve_dp(blended_instance, resolution=2_000)
        assert (plain is None) == (blend is None)
        if plain is None:
            return
        plain_rate = decision_energy_rate(
            tasks,
            {c.class_id: float(plain.item_for(c.class_id).tag)
             for c in blended_instance.classes},
        )
        blend_rate = decision_energy_rate(
            tasks,
            {c.class_id: float(blend.item_for(c.class_id).tag)
             for c in blended_instance.classes},
        )
        assert blend_rate <= plain_rate + 1e-9
        assert math.isfinite(blend_rate)

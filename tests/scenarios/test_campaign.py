"""Campaign driver: smoke run, determinism, aggregation, report schema."""

import json

import pytest

from repro.scenarios import (
    CampaignConfig,
    CampaignMatrix,
    ScenarioSpec,
    run_campaign,
    scenario_pool,
    simulate_burst_admission,
    smoke_matrix,
    util_cap_axis,
    util_dist_axis,
)
from repro.scenarios.bursts import admissible, min_demand_rate
from repro.scenarios.generator import generate_scenario
from repro.service.loadgen import LoadGenConfig, generate_bursts


@pytest.fixture(scope="module")
def smoke_report():
    return run_campaign(
        config=CampaignConfig(seed=7), workers=1, smoke=True
    )


class TestCampaignConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(replications=0)
        with pytest.raises(ValueError):
            CampaignConfig(resolution=0)
        with pytest.raises(ValueError):
            CampaignConfig(energy_weight=-1)


class TestSmokeCampaign:
    def test_runs_clean(self, smoke_report):
        assert smoke_report.instances == 16
        assert smoke_report.cells == 16
        assert smoke_report.ok
        assert smoke_report.audit["anomaly_count"] == 0
        assert smoke_report.audit["anomalies"] == []

    def test_audit_actually_audited(self, smoke_report):
        # every instance is reference-checked twice (plain + blended)
        assert smoke_report.audit["reference_checks"] == 32
        # the 6-task smoke instances are small enough to brute-force
        assert smoke_report.audit["brute_checks"] > 0

    def test_marginals_cover_every_axis_point(self, smoke_report):
        matrix = smoke_matrix()
        assert smoke_report.axis_names == matrix.axis_names()
        for axis in matrix.axes:
            per = smoke_report.marginals[axis.name]
            assert set(per) == set(axis.labels())
            assert sum(m["instances"] for m in per.values()) == 16
            for m in per.values():
                assert 0.0 <= m["schedulable_fraction"] <= 1.0

    def test_burst_path_exercised(self, smoke_report):
        assert smoke_report.totals["burst_arrivals"] > 0
        assert smoke_report.totals["mean_miss_rate"] is not None

    def test_energy_saving_reported(self, smoke_report):
        saving = smoke_report.totals["energy_saving_fraction"]
        assert saving is not None
        assert saving >= -1e-9

    def test_report_is_json_ready(self, smoke_report):
        data = json.loads(smoke_report.to_json())
        assert data["schema"] == 1
        assert data["instances"] == 16
        assert data["ok"] is True
        assert smoke_report.format()  # human summary renders


class TestSerialParallelDeterminism:
    def test_results_identical_at_any_worker_count(self):
        config = CampaignConfig(seed=3)
        serial = run_campaign(config=config, workers=1, smoke=True)
        parallel = run_campaign(config=config, workers=2, smoke=True)
        assert serial.mode == "serial"
        assert parallel.mode == "parallel"
        assert serial.comparable_dict() == parallel.comparable_dict()

    def test_different_seeds_differ(self):
        a = run_campaign(config=CampaignConfig(seed=1), workers=1,
                         smoke=True)
        b = run_campaign(config=CampaignConfig(seed=2), workers=1,
                         smoke=True)
        assert a.comparable_dict() != b.comparable_dict()


class TestBurstAdmission:
    def test_steady_spec_skips_simulation(self):
        spec = ScenarioSpec(num_tasks=4, burst_rate=0.0, burst_windows=0)
        tasks = generate_scenario(spec, 0)
        assert simulate_burst_admission(tasks, spec, 0) is None

    def test_outcome_accounting(self):
        spec = ScenarioSpec(
            num_tasks=5, util_cap=0.9, burst_rate=4.0, burst_windows=5
        )
        tasks = generate_scenario(spec, 1)
        outcome = simulate_burst_admission(tasks, spec, 1)
        assert outcome is not None
        assert outcome.windows == 5
        assert 0 <= outcome.admitted <= outcome.arrivals
        assert outcome.missed == outcome.arrivals - outcome.admitted
        assert 0.0 <= outcome.miss_rate <= 1.0

    def test_min_demand_rate_bounds_admissibility(self):
        tasks = generate_scenario(ScenarioSpec(num_tasks=4), 2)
        rate = min_demand_rate(tasks)
        assert rate > 0
        assert admissible(tasks) == (rate <= 1.0 + 1e-9)

    def test_scenario_pool_feeds_loadgen(self):
        matrix = CampaignMatrix(
            base=ScenarioSpec(num_tasks=4, num_benefit_points=2),
            axes=(util_dist_axis(("uunifast", "bimodal")),
                  util_cap_axis((0.6, 1.2))),
        )
        pool = scenario_pool(matrix.cells(), 9)
        # overload cells (cap 1.2) are skipped: service needs U <= 1
        assert len(pool) == 2
        bursts = generate_bursts(
            LoadGenConfig(seed=5, bursts=3), pool=pool
        )
        assert bursts
        pooled = {ts.task_ids for ts in pool}
        for burst in bursts:
            assert burst.requests
            for request in burst.requests:
                assert request.tasks.task_ids in pooled

    def test_scenario_pool_rejects_all_overload(self):
        with pytest.raises(ValueError, match="util_cap"):
            scenario_pool(
                [ScenarioSpec(num_tasks=3, util_cap=1.5)], 0
            )

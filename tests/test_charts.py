"""Tests for the SVG chart renderers."""

import pytest

from repro.reporting.charts import svg_bar_chart, svg_line_chart


class TestLineChart:
    def test_basic_structure(self):
        svg = svg_line_chart(
            [0, 1, 2], {"dp": [1.0, 0.9, 0.8], "heu": [0.98, 0.89, 0.79]},
            title="Figure 3", x_label="ratio", y_label="benefit",
        )
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<polyline") == 2
        assert svg.count("<circle") == 6
        assert "Figure 3" in svg
        assert "dp" in svg and "heu" in svg

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            svg_line_chart([0, 1], {"s": [1.0]})

    def test_single_x_rejected(self):
        with pytest.raises(ValueError, match="two x values"):
            svg_line_chart([0], {"s": [1.0]})

    def test_constant_series_renders(self):
        svg = svg_line_chart([0, 1], {"s": [1.0, 1.0]})
        assert "<polyline" in svg

    def test_fig3_result_plugs_in(self):
        from repro.experiments.fig3 import run_fig3

        result = run_fig3(
            accuracy_ratios=(-0.2, 0.0, 0.2), num_task_sets=2,
            num_tasks=8, seed=1,
        )
        svg = svg_line_chart(
            result.ratios, result.normalized, title="Fig 3",
        )
        assert svg.count("<polyline") == 2


class TestBarChart:
    def test_basic_structure(self):
        svg = svg_bar_chart(
            ["a", "b", "c"],
            {"busy": [1.0, 1.1, 1.0], "idle": [2.0, 2.2, 1.9]},
            baseline=1.0,
        )
        assert svg.count("<rect") >= 6  # 6 bars + legend swatches
        assert "stroke-dasharray" in svg  # the baseline

    def test_category_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values"):
            svg_bar_chart(["a", "b"], {"s": [1.0]})

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError, match="categories"):
            svg_bar_chart([], {"s": []})

    def test_many_categories_drop_tick_labels(self):
        categories = list(range(40))
        svg = svg_bar_chart(
            categories, {"s": [1.0] * 40},
        )
        # bars drawn but per-category tick labels suppressed
        assert svg.count("<rect") >= 40
        assert ">39<" not in svg

    def test_tooltips_carry_values(self):
        svg = svg_bar_chart(["x"], {"s": [1.234]})
        assert "s @ x: 1.234" in svg

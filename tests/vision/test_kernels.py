"""Functional tests for the four vision kernels — they must actually
work on the synthetic scenes, not just run."""

import numpy as np
import pytest

from repro.vision.images import (
    embed_template,
    generate_motion_sequence,
    generate_scene,
    generate_stereo_pair,
)
from repro.vision.kernels import (
    block_matching_disparity,
    match_template,
    motion_mask,
    sobel_edges,
)


class TestSobelEdges:
    def test_detects_a_sharp_edge(self):
        image = np.zeros((20, 20))
        image[:, 10:] = 1.0
        magnitude, mask = sobel_edges(image)
        assert mask[:, 9:11].any(axis=1).all()  # edge column detected
        assert not mask[:, :5].any()  # flat region clean
        assert not mask[:, 15:].any()

    def test_magnitude_normalized(self, rng):
        magnitude, _ = sobel_edges(generate_scene(rng=rng))
        assert magnitude.max() <= 1.0
        assert magnitude.min() >= 0.0

    def test_flat_image_has_no_edges(self):
        _, mask = sobel_edges(np.full((10, 10), 0.5))
        assert not mask.any()

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            sobel_edges(np.zeros((3, 3, 3)))


class TestBlockMatching:
    def test_recovers_known_disparity(self, rng):
        left, right, truth = generate_stereo_pair(
            90, 140, max_disparity=8, rng=rng
        )
        estimated = block_matching_disparity(left, right, max_disparity=10)
        # evaluate away from image and band borders
        inner = estimated[8:22, 20:120]
        truth_inner = truth[8:22, 20:120]
        accuracy = (np.abs(inner - truth_inner) <= 1).mean()
        assert accuracy > 0.6

    def test_identical_pair_zero_disparity(self, rng):
        scene = generate_scene(40, 60, rng=rng)
        disparity = block_matching_disparity(scene, scene, max_disparity=5)
        assert (disparity == 0).mean() > 0.9

    def test_validation(self, rng):
        scene = generate_scene(20, 20, rng=rng)
        with pytest.raises(ValueError):
            block_matching_disparity(scene, scene[:10], max_disparity=4)
        with pytest.raises(ValueError):
            block_matching_disparity(scene, scene, block_size=4)
        with pytest.raises(ValueError):
            block_matching_disparity(scene, scene, max_disparity=0)


class TestMotionMask:
    def test_detects_moving_object(self, rng):
        frames = generate_motion_sequence(num_frames=2, rng=rng)
        mask = motion_mask(frames[0], frames[1])
        assert mask.any()
        assert mask.mean() < 0.2  # change is localized

    def test_static_frames_no_motion(self, rng):
        scene = generate_scene(rng=rng)
        assert not motion_mask(scene, scene).any()

    def test_shape_mismatch_rejected(self, rng):
        scene = generate_scene(20, 20, rng=rng)
        with pytest.raises(ValueError):
            motion_mask(scene, scene[:10])


class TestTemplateMatching:
    def test_finds_embedded_template(self, rng):
        scene = generate_scene(80, 100, rng=rng)
        template = generate_scene(12, 12, num_objects=2,
                                  rng=np.random.default_rng(9))
        stamped = embed_template(scene, template, (30, 55))
        (row, col), score = match_template(stamped, template)
        assert (row, col) == (30, 55)
        assert score > 0.99

    def test_score_is_bounded_correlation(self, rng):
        scene = generate_scene(40, 40, rng=rng)
        template = scene[5:15, 5:15].copy()
        _, score = match_template(scene, template)
        assert -1.0 <= score <= 1.0

    def test_template_larger_than_image_rejected(self, rng):
        scene = generate_scene(20, 20, rng=rng)
        with pytest.raises(ValueError):
            match_template(scene, np.zeros((30, 30)))

    def test_flat_template_rejected(self, rng):
        scene = generate_scene(20, 20, rng=rng)
        with pytest.raises(ValueError, match="variance"):
            match_template(scene, np.full((5, 5), 0.5))

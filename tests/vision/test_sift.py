"""Functional tests for the SIFT-lite pipeline."""

import numpy as np
import pytest

from repro.vision.images import embed_template, generate_scene
from repro.vision.sift import (
    compute_descriptors,
    detect_keypoints,
    dog_pyramid,
    gaussian_blur,
    match_descriptors,
    sift_match,
)


class TestGaussianBlur:
    def test_preserves_mean(self, rng):
        image = generate_scene(40, 40, rng=rng)
        blurred = gaussian_blur(image, sigma=1.5)
        assert blurred.mean() == pytest.approx(image.mean(), abs=0.01)

    def test_reduces_variance(self, rng):
        image = generate_scene(40, 40, rng=rng)
        assert gaussian_blur(image, 2.0).std() < image.std()

    def test_zero_sigma_is_copy(self, rng):
        image = generate_scene(20, 20, rng=rng)
        out = gaussian_blur(image, 0.0)
        np.testing.assert_array_equal(out, image)
        assert out is not image


class TestDogPyramid:
    def test_layer_counts(self, rng):
        image = generate_scene(40, 40, rng=rng)
        gaussians, dogs = dog_pyramid(image, num_scales=5)
        assert len(gaussians) == 5
        assert len(dogs) == 4

    def test_needs_three_scales(self, rng):
        with pytest.raises(ValueError):
            dog_pyramid(generate_scene(20, 20, rng=rng), num_scales=2)

    def test_flat_image_gives_zero_dog(self):
        flat = np.full((30, 30), 0.5)
        _, dogs = dog_pyramid(flat)
        for dog in dogs:
            assert np.abs(dog).max() < 1e-9


class TestKeypoints:
    def test_structured_scene_yields_keypoints(self, rng):
        image = generate_scene(80, 80, rng=rng)
        keypoints = detect_keypoints(image)
        assert len(keypoints) > 5

    def test_flat_image_yields_none(self):
        assert detect_keypoints(np.full((40, 40), 0.5)) == []

    def test_sorted_by_response(self, rng):
        keypoints = detect_keypoints(generate_scene(60, 60, rng=rng))
        responses = [kp.response for kp in keypoints]
        assert responses == sorted(responses, reverse=True)

    def test_max_keypoints_respected(self, rng):
        keypoints = detect_keypoints(
            generate_scene(80, 80, rng=rng), max_keypoints=7
        )
        assert len(keypoints) <= 7

    def test_corner_detected_near_blob(self):
        image = np.full((40, 40), 0.2)
        image[18:23, 18:23] = 1.0  # a bright blob
        keypoints = detect_keypoints(image, contrast_threshold=0.01)
        assert any(
            abs(kp.row - 20) <= 4 and abs(kp.col - 20) <= 4
            for kp in keypoints
        )


class TestDescriptors:
    def test_dimension_and_normalization(self, rng):
        image = generate_scene(80, 80, rng=rng)
        kps = detect_keypoints(image)
        kept, descriptors = compute_descriptors(image, kps)
        assert descriptors.shape[1] == 128  # 4*4 grid * 8 bins
        assert len(kept) == descriptors.shape[0]
        norms = np.linalg.norm(descriptors, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_border_keypoints_dropped(self, rng):
        image = generate_scene(40, 40, rng=rng)
        from repro.vision.sift import Keypoint

        edge_kp = [Keypoint(row=1, col=1, scale=1, response=1.0)]
        kept, descriptors = compute_descriptors(image, edge_kp)
        assert kept == []
        assert descriptors.shape == (0, 128)


class TestMatching:
    def test_self_match_is_identity(self, rng):
        image = generate_scene(80, 80, rng=rng)
        kps = detect_keypoints(image)
        _, desc = compute_descriptors(image, kps)
        # against itself plus a decoy set, each descriptor finds itself
        noise = rng.random(desc.shape)
        noise /= np.linalg.norm(noise, axis=1, keepdims=True)
        train = np.vstack([desc, noise])
        matches = match_descriptors(desc, train, ratio=0.9)
        hits = sum(1 for qi, ti in matches if qi == ti)
        assert hits >= 0.8 * len(desc)

    def test_empty_inputs(self):
        assert match_descriptors(np.zeros((0, 128)), np.zeros((0, 128))) == []

    def test_invalid_ratio(self, rng):
        d = rng.random((3, 128))
        with pytest.raises(ValueError):
            match_descriptors(d, d, ratio=1.5)


class TestSiftMatch:
    def test_relocates_embedded_template(self, rng):
        scene = generate_scene(120, 160, num_objects=8, rng=rng)
        template = generate_scene(
            40, 40, num_objects=4, rng=np.random.default_rng(99)
        )
        stamped = embed_template(scene, template, (50, 70))
        position, votes = sift_match(stamped, template)
        assert votes >= 3
        assert position is not None
        row, col = position
        assert abs(row - 50) <= 3
        assert abs(col - 70) <= 3

    def test_absent_template_few_votes(self, rng):
        scene = generate_scene(100, 100, rng=rng)
        template = generate_scene(
            40, 40, num_objects=4, rng=np.random.default_rng(123)
        )
        _, votes_absent = sift_match(scene, template, ratio=0.7)
        stamped = embed_template(scene, template, (30, 30))
        _, votes_present = sift_match(stamped, template, ratio=0.7)
        assert votes_present > votes_absent

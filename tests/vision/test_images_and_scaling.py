"""Tests for synthetic image generation, scaling and PSNR."""

import numpy as np
import pytest

from repro.vision.images import (
    embed_template,
    generate_motion_sequence,
    generate_scene,
    generate_stereo_pair,
)
from repro.vision.psnr import PSNR_CAP, mse, psnr
from repro.vision.scaling import downscale, roundtrip, scaled_shape, upscale


class TestSceneGeneration:
    def test_shape_and_range(self, rng):
        scene = generate_scene(120, 160, rng=rng)
        assert scene.shape == (120, 160)
        assert scene.min() >= 0.0
        assert scene.max() <= 1.0

    def test_has_structure(self, rng):
        """Scenes must not be flat — kernels need content."""
        scene = generate_scene(rng=rng)
        assert scene.std() > 0.05

    def test_deterministic_per_seed(self):
        a = generate_scene(rng=np.random.default_rng(5))
        b = generate_scene(rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_too_small_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_scene(4, 4, rng=rng)


class TestStereoPair:
    def test_right_is_shifted_left(self, rng):
        left, right, disparity = generate_stereo_pair(
            80, 120, max_disparity=8, rng=rng
        )
        assert left.shape == right.shape == disparity.shape
        # top band shifted by max disparity
        band = slice(10, 20)
        np.testing.assert_allclose(
            right[band, : 120 - 8], left[band, 8:120], atol=1e-12
        )

    def test_disparity_bands_decrease_with_depth(self, rng):
        _, _, disparity = generate_stereo_pair(90, 120, max_disparity=12,
                                               rng=rng)
        assert disparity[0, 0] == 12
        assert disparity[89, 0] <= 3


class TestMotionSequence:
    def test_frames_differ_only_near_object(self, rng):
        frames = generate_motion_sequence(num_frames=3, rng=rng)
        delta = np.abs(frames[1] - frames[0])
        assert (delta > 0.05).sum() > 0  # something moved
        assert (delta > 0.05).mean() < 0.2  # most of the scene is static

    def test_needs_two_frames(self, rng):
        with pytest.raises(ValueError):
            generate_motion_sequence(num_frames=1, rng=rng)


class TestEmbedTemplate:
    def test_pastes_at_position(self, rng):
        scene = generate_scene(50, 50, rng=rng)
        template = np.full((5, 5), 0.42)
        out = embed_template(scene, template, (10, 20))
        np.testing.assert_array_equal(out[10:15, 20:25], template)
        # original untouched
        assert not np.array_equal(scene[10:15, 20:25], template)

    def test_out_of_bounds_rejected(self, rng):
        scene = generate_scene(50, 50, rng=rng)
        with pytest.raises(ValueError):
            embed_template(scene, np.zeros((10, 10)), (45, 45))


class TestScaling:
    def test_scaled_shape(self):
        assert scaled_shape((200, 300), 0.5) == (100, 150)
        assert scaled_shape((200, 300), 1.0) == (200, 300)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            scaled_shape((10, 10), 0.0)
        with pytest.raises(ValueError):
            scaled_shape((10, 10), 1.5)

    def test_downscale_shape(self, rng):
        scene = generate_scene(100, 200, rng=rng)
        assert downscale(scene, 0.5).shape == (50, 100)

    def test_factor_one_is_copy(self, rng):
        scene = generate_scene(40, 40, rng=rng)
        out = downscale(scene, 1.0)
        np.testing.assert_array_equal(out, scene)
        assert out is not scene

    def test_upscale_restores_shape(self, rng):
        scene = generate_scene(64, 64, rng=rng)
        small = downscale(scene, 0.5)
        assert upscale(small, (64, 64)).shape == (64, 64)

    def test_roundtrip_loses_information_monotonically(self, rng):
        """Smaller scaling factors lose more information — the case
        study's premise that quality increases with level."""
        scene = generate_scene(rng=rng)
        qualities = [
            psnr(scene, roundtrip(scene, f)) for f in (0.3, 0.5, 0.8, 1.0)
        ]
        assert qualities == sorted(qualities)
        assert qualities[-1] == PSNR_CAP  # factor 1.0 is lossless

    def test_values_stay_in_range(self, rng):
        scene = generate_scene(rng=rng)
        out = roundtrip(scene, 0.4)
        assert out.min() >= -1e-9
        assert out.max() <= 1.0 + 1e-9

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            downscale(np.zeros((3, 3, 3)), 0.5)


class TestPsnr:
    def test_identical_images_capped(self):
        img = np.ones((10, 10)) * 0.5
        assert psnr(img, img) == PSNR_CAP

    def test_known_mse(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 0.1)
        assert mse(a, b) == pytest.approx(0.01)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((5, 5)), np.zeros((6, 6)))

    def test_peak_validation(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((2, 2)), peak=0.0)

    def test_worse_distortion_lower_psnr(self):
        ref = np.zeros((10, 10))
        assert psnr(ref, np.full((10, 10), 0.2)) < psnr(
            ref, np.full((10, 10), 0.1)
        )

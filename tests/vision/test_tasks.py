"""Tests for the case-study task set construction (Table 1)."""

import pytest

from repro.core.odm import OffloadingDecisionManager
from repro.core.task import OffloadableTask
from repro.estimator.response_time import EmpiricalResponseTimes
from repro.vision.tasks import (
    DEFAULT_LEVEL_FACTORS,
    TABLE1,
    build_measured_task_set,
    level_quality,
    measured_benefit_functions,
    table1_task_set,
)


class TestTable1Data:
    def test_four_tasks(self):
        assert len(TABLE1) == 4
        assert [row.task_id for row in TABLE1] == [
            "tau1", "tau2", "tau3", "tau4",
        ]

    def test_published_values_preserved(self):
        """Spot-check exact values against the paper's Table 1."""
        tau1 = TABLE1[0]
        assert tau1.local_benefit == pytest.approx(22.4897)
        assert tau1.points[0] == (pytest.approx(0.1952814), 30.5918)
        assert tau1.points[-1][1] == 99.0
        tau4 = TABLE1[3]
        assert tau4.points[-1][0] == pytest.approx(0.89136)

    def test_deadlines_match_paper(self):
        assert [row.deadline for row in TABLE1] == [1.8, 1.8, 2.0, 2.0]

    def test_default_weights_match_paper(self):
        assert [row.weight for row in TABLE1] == [1.0, 2.0, 3.0, 4.0]

    def test_benefits_nondecreasing_per_row(self):
        for row in TABLE1:
            values = [row.local_benefit] + [g for _, g in row.points]
            assert values == sorted(values)


class TestTable1TaskSet:
    def test_structure(self, table1_tasks):
        assert len(table1_tasks) == 4
        for task in table1_tasks:
            assert isinstance(task, OffloadableTask)
            assert task.benefit.num_points == 5  # local + 4 levels

    def test_all_local_configuration_feasible_but_tight(self, table1_tasks):
        u = table1_tasks.total_utilization
        assert 0.8 < u <= 1.0  # the regime where offloading is a trade-off

    def test_compensation_equals_local_wcet(self, table1_tasks):
        """The paper's suggestion C_{i,2} = C_i."""
        for task in table1_tasks:
            assert task.compensation_time == pytest.approx(task.wcet)

    def test_benefit_points_match_published(self, table1_tasks):
        for row in TABLE1:
            task = table1_tasks[row.task_id]
            for (r, g) in row.points:
                assert task.benefit.value(r) == pytest.approx(g)

    def test_setup_grows_with_level(self, table1_tasks):
        for task in table1_tasks:
            setups = [
                p.setup_time for p in task.benefit.points if not p.is_local
            ]
            assert setups == sorted(setups)

    def test_weight_override(self):
        tasks = table1_task_set(weights=(4, 3, 2, 1))
        assert tasks["tau1"].weight == 4.0
        assert tasks["tau4"].weight == 1.0

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError):
            table1_task_set(weights=(1, 2))

    def test_not_all_tasks_can_offload_at_max(self, table1_tasks):
        """The MCKP must be non-trivial: offloading everything at the
        top level exceeds the Theorem 3 budget."""
        total = sum(
            task.offload_demand_rate(task.benefit.response_times[-1])
            for task in table1_tasks
        )
        assert total > 1.0

    def test_odm_finds_profitable_offloading(self, table1_tasks):
        decision = OffloadingDecisionManager("dp").decide(table1_tasks)
        assert len(decision.offloaded_task_ids) >= 1
        all_local = sum(
            t.weight * t.benefit.local_benefit for t in table1_tasks
        )
        assert decision.expected_benefit > all_local


class TestLevelQuality:
    def test_full_resolution_capped(self):
        assert level_quality(1.0) == 99.0

    def test_monotone_in_factor(self):
        qualities = [level_quality(f) for f in (0.4, 0.6, 0.8, 1.0)]
        assert qualities == sorted(qualities)


class TestMeasuredConstruction:
    def _fake_samples(self):
        """Synthetic per-level response-time distributions: larger levels
        respond slower, mimicking the probe campaign."""
        out = {}
        for row in TABLE1:
            per_level = {}
            for k, factor in enumerate(DEFAULT_LEVEL_FACTORS):
                center = 0.1 + 0.05 * k
                per_level[factor] = EmpiricalResponseTimes(
                    [center * (0.9 + 0.01 * j) for j in range(20)]
                )
            out[row.task_id] = per_level
        return out

    def test_functions_built_for_every_task(self):
        functions = measured_benefit_functions(self._fake_samples())
        assert set(functions) == {"tau1", "tau2", "tau3", "tau4"}
        for fn in functions.values():
            assert fn.num_points >= 2
            assert fn.max_benefit == 99.0  # full-res level present

    def test_task_set_assembles_and_decides(self):
        functions = measured_benefit_functions(self._fake_samples())
        tasks = build_measured_task_set(functions)
        decision = OffloadingDecisionManager("dp").decide(tasks)
        assert decision.schedulability.feasible

    def test_missing_function_rejected(self):
        functions = measured_benefit_functions(self._fake_samples())
        del functions["tau4"]
        with pytest.raises(KeyError):
            build_measured_task_set(functions)

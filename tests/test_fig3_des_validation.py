"""DES cross-validation of the Figure 3 objective semantics.

Figure 3 scores decisions analytically: ``Σ G_i(R_i)`` = the expected
number of timely high-performance results.  These tests close the loop:
run the decided system on a server whose latency distribution *is* the
true probability staircase (:class:`StaircaseTransport`) and check the
measured timely-return rates against the analytic expectations —
including that the degradation under estimation error is real, not an
artifact of the scoring formula.
"""

import numpy as np
import pytest

from repro.core.odm import OffloadingDecisionManager
from repro.estimator.errors import perturb_task_set
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import StaircaseTransport
from repro.sim.engine import Simulator
from repro.workloads.generator import paper_simulation_task_set


def _run_decided_system(tasks, decision, seed, horizon=60.0):
    sim = Simulator()
    transport = StaircaseTransport(sim, rng=np.random.default_rng(seed))
    scheduler = OffloadingScheduler(
        sim, tasks, response_times=decision.response_times,
        transport=transport,
    )
    return scheduler.run(horizon)


class TestStaircaseTransport:
    def test_arrival_probability_matches_staircase(self):
        """Per-task timely-return frequency ≈ G_i(R_i)."""
        rng = np.random.default_rng(1)
        tasks = paper_simulation_task_set(rng, num_tasks=10)
        decision = OffloadingDecisionManager("dp").decide(tasks)
        trace = _run_decided_system(tasks, decision, seed=2, horizon=120.0)

        total_expected = 0.0
        total_observed = 0
        total_jobs = 0
        for task in tasks:
            r = decision.response_times[task.task_id]
            if r == 0:
                continue
            jobs = [
                rec for rec in trace.jobs_of(task.task_id)
                if rec.finish is not None
            ]
            total_jobs += len(jobs)
            total_observed += sum(1 for rec in jobs if rec.result_returned)
            total_expected += task.benefit.value(r) * len(jobs)
        assert total_jobs > 100  # enough samples to be meaningful
        # aggregate binomial: observed within a few percent of expected
        assert total_observed == pytest.approx(total_expected, rel=0.12)

    def test_non_probability_benefits_rejected(self):
        from repro.vision.tasks import table1_task_set

        tasks = table1_task_set()  # PSNR-valued benefits > 1
        decision = OffloadingDecisionManager("dp").decide(tasks)
        sim = Simulator()
        transport = StaircaseTransport(sim)
        scheduler = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=transport,
        )
        scheduler.start(5.0)
        with pytest.raises(ValueError, match="probability-valued"):
            sim.run_until(5.0)

    def test_deadlines_always_met(self):
        rng = np.random.default_rng(3)
        tasks = paper_simulation_task_set(rng, num_tasks=15)
        decision = OffloadingDecisionManager("dp").decide(tasks)
        trace = _run_decided_system(tasks, decision, seed=4)
        assert trace.all_deadlines_met


class TestErrorDegradationIsReal:
    def test_overestimation_reduces_measured_returns(self):
        """Decisions made on +40%-skewed beliefs must yield measurably
        fewer timely returns on the true server than x=0 decisions."""
        rng = np.random.default_rng(5)
        truth = paper_simulation_task_set(rng, num_tasks=20)
        manager = OffloadingDecisionManager("dp")

        perfect = manager.decide(truth)
        skewed = manager.decide(perturb_task_set(truth, 0.4))

        trace_perfect = _run_decided_system(
            truth, perfect, seed=6, horizon=120.0
        )
        trace_skewed = _run_decided_system(
            truth, skewed, seed=6, horizon=120.0
        )

        returns_perfect = sum(
            1 for rec in trace_perfect.jobs.values() if rec.result_returned
        )
        returns_skewed = sum(
            1 for rec in trace_skewed.jobs.values() if rec.result_returned
        )
        assert returns_skewed < returns_perfect
        # both remain hard-real-time safe regardless
        assert trace_perfect.all_deadlines_met
        assert trace_skewed.all_deadlines_met

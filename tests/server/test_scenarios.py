"""Tests for scenario presets, background load and the full transport."""

import numpy as np
import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask
from repro.sched.transport import OffloadRequest
from repro.server.background import BackgroundLoadGenerator
from repro.server.gpu import GpuDevice
from repro.server.proxy import GpuServerProxy
from repro.server.scenarios import SCENARIOS, build_server
from repro.server.transport import ResponseTimeCalibratedWork
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _request(sim, level=0.2):
    task = OffloadableTask(
        task_id="o", wcet=0.1, period=2.0,
        setup_time=0.02, compensation_time=0.1,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(level, 1.0)]
        ),
    )
    return OffloadRequest(
        task=task, job_id=0, submitted_at=sim.now,
        response_budget=level, level_response_time=level,
    )


class TestScenarioPresets:
    def test_three_regimes_exist(self):
        assert set(SCENARIOS) == {"busy", "not_busy", "idle"}

    def test_contention_ordering(self):
        """busy saturates, not_busy is partial, idle offers nothing."""
        busy = SCENARIOS["busy"]
        not_busy = SCENARIOS["not_busy"]
        idle = SCENARIOS["idle"]
        assert busy.background_utilization > 1.0
        assert 0.0 < not_busy.background_utilization < 1.0
        assert idle.background_utilization == 0.0

    def test_two_gpus_like_the_paper(self):
        for scenario in SCENARIOS.values():
            assert scenario.num_gpus == 2


class TestBackgroundLoad:
    def test_injection_rate_statistics(self, sim):
        rng = np.random.default_rng(0)
        proxy = GpuServerProxy(sim, [GpuDevice(sim, "g0", speed=1e9)])
        gen = BackgroundLoadGenerator(
            sim, proxy, arrival_rate=50.0, rng=rng, mean_work=1e-9
        )
        gen.start()
        sim.run_until(20.0)
        rate = gen.kernels_injected / 20.0
        assert 40.0 < rate < 60.0

    def test_zero_rate_never_injects(self, sim):
        proxy = GpuServerProxy(sim, [GpuDevice(sim, "g0")])
        gen = BackgroundLoadGenerator(
            sim, proxy, arrival_rate=0.0, rng=np.random.default_rng(0)
        )
        gen.start()
        sim.run_until(10.0)
        assert gen.kernels_injected == 0

    def test_stop_halts_injection(self, sim):
        rng = np.random.default_rng(0)
        proxy = GpuServerProxy(sim, [GpuDevice(sim, "g0", speed=1e9)])
        gen = BackgroundLoadGenerator(
            sim, proxy, arrival_rate=100.0, rng=rng, mean_work=1e-9
        )
        gen.start()
        sim.run_until(1.0)
        count = gen.kernels_injected
        gen.stop()
        sim.run_until(5.0)
        assert gen.kernels_injected == count

    def test_offered_load(self, sim):
        proxy = GpuServerProxy(sim, [GpuDevice(sim, "g0")])
        gen = BackgroundLoadGenerator(
            sim, proxy, arrival_rate=10.0,
            rng=np.random.default_rng(0), mean_work=0.05,
        )
        assert gen.offered_load == pytest.approx(0.5)


class TestWorkModel:
    def test_fractions_must_leave_headroom(self):
        with pytest.raises(ValueError):
            ResponseTimeCalibratedWork(
                bandwidth=1e6, upload_fraction=0.5, compute_fraction=0.5,
                download_fraction=0.2,
            )

    def test_kernel_scales_with_level(self, sim):
        model = ResponseTimeCalibratedWork(bandwidth=1e6)
        small = model.kernel_for(_request(sim, level=0.1))
        large = model.kernel_for(_request(sim, level=0.4))
        assert large.compute_work == pytest.approx(4 * small.compute_work)
        assert large.upload_bytes == pytest.approx(4 * small.upload_bytes)

    def test_nonpositive_level_rejected(self, sim):
        model = ResponseTimeCalibratedWork(bandwidth=1e6)
        request = _request(sim, level=0.2)
        request.level_response_time = 0.0
        with pytest.raises(ValueError):
            model.kernel_for(request)


class TestBuiltServer:
    def test_idle_server_meets_budget_mostly(self):
        """On the idle scenario, most responses land within the level's
        nominal budget — the premise of the Figure 2 'idle' series."""
        sim = Simulator()
        built = build_server(sim, SCENARIOS["idle"], RandomStreams(seed=3))
        results = []
        for k in range(40):
            sim.schedule_at(
                k * 0.5,
                lambda ev: built.transport.submit(
                    _request(sim), lambda t: results.append(t)
                ),
            )
        sim.run_until(40.0)
        assert len(built.transport.response_samples) >= 35
        within = sum(
            1 for s in built.transport.response_samples if s <= 0.2
        )
        assert within / len(built.transport.response_samples) > 0.7

    def test_busy_server_misses_budget_mostly(self):
        sim = Simulator()
        built = build_server(sim, SCENARIOS["busy"], RandomStreams(seed=3))
        for k in range(40):
            sim.schedule_at(
                5.0 + k * 0.5,
                lambda ev: built.transport.submit(
                    _request(sim), lambda t: None
                ),
            )
        sim.run_until(60.0)
        samples = built.transport.response_samples
        assert samples, "no responses at all"
        within = sum(1 for s in samples if s <= 0.2)
        assert within / max(len(samples), 1) < 0.3

    def test_background_only_on_contended_scenarios(self):
        sim = Simulator()
        idle = build_server(sim, SCENARIOS["idle"], RandomStreams(seed=0))
        assert idle.background is None
        busy = build_server(sim, SCENARIOS["busy"], RandomStreams(seed=0))
        assert busy.background is not None

    def test_loss_counted(self):
        sim = Simulator()
        scenario = SCENARIOS["idle"]
        # crank loss to 100% via a modified scenario
        from dataclasses import replace

        lossy = replace(scenario, loss_probability=1.0)
        built = build_server(sim, lossy, RandomStreams(seed=0))
        built.transport.submit(_request(sim), lambda t: None)
        sim.run_until(5.0)
        assert built.transport.lost == 1
        assert built.transport.response_samples == []

"""Tests for the Gilbert–Elliott bursty channel."""

import numpy as np
import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.odm import OffloadingDecisionManager
from repro.core.task import OffloadableTask, TaskSet
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import FixedLatencyTransport, OffloadRequest
from repro.server.bursty import GilbertElliottChannel
from repro.sim.engine import Simulator
from repro.vision.tasks import table1_task_set


def _request(sim):
    task = OffloadableTask(
        task_id="o", wcet=0.1, period=1.0,
        setup_time=0.02, compensation_time=0.1,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(0.3, 1.0)]
        ),
    )
    return OffloadRequest(
        task=task, job_id=0, submitted_at=sim.now,
        response_budget=0.3, level_response_time=0.3,
    )


class TestValidation:
    def test_parameters(self, sim):
        inner = FixedLatencyTransport(sim, 0.01)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GilbertElliottChannel(sim, inner, rng, mean_good=0.0)
        with pytest.raises(ValueError):
            GilbertElliottChannel(sim, inner, rng, loss_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliottChannel(sim, inner, rng, extra_delay_bad=-1.0)


class TestStateMachine:
    def test_alternates_states(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, 0.01)
        channel = GilbertElliottChannel(
            sim, inner, np.random.default_rng(1),
            mean_good=0.5, mean_bad=0.5,
        )
        sim.run_until(20.0)
        assert channel.bursts > 5  # multiple bad periods occurred

    def test_good_state_mostly_transparent(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, 0.01)
        channel = GilbertElliottChannel(
            sim, inner, np.random.default_rng(2),
            mean_good=1e9, loss_good=0.0,  # never leaves GOOD
        )
        arrivals = []
        for _ in range(20):
            channel.submit(_request(sim), arrivals.append)
        sim.run_until(1.0)
        assert len(arrivals) == 20

    def test_bad_state_loses_and_delays(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, 0.01)
        channel = GilbertElliottChannel(
            sim, inner, np.random.default_rng(3),
            mean_good=1e-6, mean_bad=1e9,  # immediately BAD forever
            loss_bad=0.5, extra_delay_bad=0.2,
        )
        sim.run_until(0.001)  # let the flip happen
        assert channel.in_bad_state
        arrivals = []
        for _ in range(100):
            channel.submit(_request(sim), arrivals.append)
        sim.run_until(50.0)
        assert 20 < len(arrivals) < 80  # roughly half lost
        # survivors carry the extra delay
        assert min(arrivals) > 0.01


class TestGuaranteeUnderBursts:
    def test_correlated_bursts_never_break_deadlines(self):
        """A burst takes out several consecutive offloads; compensation
        must absorb the correlated failures without a single miss."""
        tasks = table1_task_set()
        decision = OffloadingDecisionManager("dp").decide(tasks)
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=0.05)
        channel = GilbertElliottChannel(
            sim, inner, np.random.default_rng(7),
            mean_good=3.0, mean_bad=2.0,
            loss_bad=0.9, extra_delay_bad=1.0,
        )
        scheduler = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=channel,
        )
        trace = scheduler.run(30.0)
        assert trace.all_deadlines_met
        # the bursts actually did damage (otherwise the test is vacuous)
        assert trace.compensation_rate() > 0.1
        assert channel.bursts >= 2

"""Unit tests for the network channel model."""

import numpy as np
import pytest

from repro.server.network import NetworkChannel


class TestValidation:
    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkChannel(bandwidth=0.0)

    def test_negative_base_latency_rejected(self):
        with pytest.raises(ValueError):
            NetworkChannel(bandwidth=1e6, base_latency=-0.1)

    def test_loss_probability_range(self):
        with pytest.raises(ValueError):
            NetworkChannel(bandwidth=1e6, loss_probability=1.5)

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            NetworkChannel(bandwidth=1e6, jitter_scale=0.01)

    def test_loss_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            NetworkChannel(bandwidth=1e6, loss_probability=0.1)


class TestDeterministicChannel:
    def test_transfer_time_formula(self):
        ch = NetworkChannel(bandwidth=1e6, base_latency=0.002)
        assert ch.transfer_time(500_000) == pytest.approx(0.502)

    def test_zero_bytes_is_base_latency(self):
        ch = NetworkChannel(bandwidth=1e6, base_latency=0.002)
        assert ch.transfer_time(0) == pytest.approx(0.002)

    def test_negative_bytes_rejected(self):
        ch = NetworkChannel(bandwidth=1e6)
        with pytest.raises(ValueError):
            ch.transfer_time(-1)

    def test_never_lost_without_loss(self):
        ch = NetworkChannel(bandwidth=1e6)
        assert not any(ch.is_lost() for _ in range(100))


class TestStochasticChannel:
    def test_jitter_adds_positive_delay(self):
        rng = np.random.default_rng(0)
        ch = NetworkChannel(
            bandwidth=1e6, base_latency=0.002, jitter_scale=0.005, rng=rng
        )
        base = 0.002 + 0.1
        samples = [ch.transfer_time(100_000) for _ in range(200)]
        assert all(s > base for s in samples)

    def test_mean_transfer_time_analytic(self):
        rng = np.random.default_rng(1)
        ch = NetworkChannel(
            bandwidth=1e6, base_latency=0.002, jitter_scale=0.005,
            jitter_sigma=0.5, rng=rng,
        )
        samples = [ch.transfer_time(0) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(
            ch.mean_transfer_time(0), rel=0.05
        )

    def test_loss_rate_statistics(self):
        rng = np.random.default_rng(2)
        ch = NetworkChannel(bandwidth=1e6, loss_probability=0.3, rng=rng)
        losses = sum(ch.is_lost() for _ in range(10_000))
        assert 0.25 < losses / 10_000 < 0.35

"""Unit tests for the GPU device model and the dispatch proxy."""

import numpy as np
import pytest

from repro.server.gpu import GpuDevice, KernelWork
from repro.server.proxy import GpuServerProxy
from repro.sim.engine import Simulator


def _kernel(work=0.1, label=""):
    return KernelWork(
        upload_bytes=0, compute_work=work, download_bytes=0, label=label
    )


class TestKernelWork:
    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            KernelWork(0, -1.0, 0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            KernelWork(-1, 0.1, 0)

    def test_ids_unique(self):
        assert _kernel().kernel_id != _kernel().kernel_id


class TestGpuDevice:
    def test_deterministic_service_time(self, sim):
        gpu = GpuDevice(sim, "g0", speed=2.0)
        done = []
        gpu.enqueue(_kernel(work=1.0), done.append)
        sim.run_until(1.0)
        assert done == [pytest.approx(0.5)]

    def test_fifo_order(self, sim):
        gpu = GpuDevice(sim, "g0")
        order = []
        gpu.enqueue(_kernel(0.1, "a"), lambda t: order.append(("a", t)))
        gpu.enqueue(_kernel(0.1, "b"), lambda t: order.append(("b", t)))
        sim.run_until(1.0)
        assert order == [("a", pytest.approx(0.1)),
                         ("b", pytest.approx(0.2))]

    def test_queue_length_includes_running(self, sim):
        gpu = GpuDevice(sim, "g0")
        gpu.enqueue(_kernel(0.5), lambda t: None)
        gpu.enqueue(_kernel(0.5), lambda t: None)
        assert gpu.queue_length == 2
        assert gpu.busy

    def test_busy_time_accumulates(self, sim):
        gpu = GpuDevice(sim, "g0")
        for _ in range(3):
            gpu.enqueue(_kernel(0.2), lambda t: None)
        sim.run_until(1.0)
        assert gpu.busy_time == pytest.approx(0.6)
        assert gpu.kernels_completed == 3

    def test_interference_needs_rng(self, sim):
        with pytest.raises(ValueError):
            GpuDevice(sim, "g0", interference_sigma=0.5)

    def test_interference_perturbs_service_time(self, sim):
        rng = np.random.default_rng(0)
        gpu = GpuDevice(sim, "g0", interference_sigma=0.5, rng=rng)
        done = []
        for _ in range(20):
            gpu.enqueue(_kernel(0.1), done.append)
        sim.run_until(100.0)
        gaps = np.diff([0.0] + done)
        assert np.std(gaps) > 0.005  # visibly noisy

    def test_invalid_speed_rejected(self, sim):
        with pytest.raises(ValueError):
            GpuDevice(sim, "g0", speed=0.0)


class TestProxy:
    def test_requires_devices(self, sim):
        with pytest.raises(ValueError):
            GpuServerProxy(sim, [])

    def test_dispatch_overhead_delays_start(self, sim):
        gpu = GpuDevice(sim, "g0")
        proxy = GpuServerProxy(sim, [gpu], dispatch_overhead=0.01)
        done = []
        proxy.execute(_kernel(0.1), done.append)
        sim.run_until(1.0)
        assert done == [pytest.approx(0.11)]

    def test_least_loaded_dispatch(self, sim):
        g0 = GpuDevice(sim, "g0")
        g1 = GpuDevice(sim, "g1")
        proxy = GpuServerProxy(sim, [g0, g1], dispatch_overhead=0.0)
        proxy.execute(_kernel(1.0), lambda t: None)  # -> g0
        proxy.execute(_kernel(0.1), lambda t: None)  # -> g1 (g0 busy)
        assert g0.queue_length == 1
        assert g1.queue_length == 1

    def test_parallel_speedup(self, sim):
        """Two GPUs finish two kernels in the time one would take."""
        devices = [GpuDevice(sim, f"g{i}") for i in range(2)]
        proxy = GpuServerProxy(sim, devices, dispatch_overhead=0.0)
        done = []
        proxy.execute(_kernel(0.5), done.append)
        proxy.execute(_kernel(0.5), done.append)
        sim.run_until(1.0)
        assert done == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_aggregate_statistics(self, sim):
        devices = [GpuDevice(sim, f"g{i}") for i in range(2)]
        proxy = GpuServerProxy(sim, devices, dispatch_overhead=0.0)
        for _ in range(4):
            proxy.execute(_kernel(0.1), lambda t: None)
        sim.run_until(1.0)
        assert proxy.requests_received == 4
        assert proxy.kernels_completed == 4
        assert proxy.total_busy_time == pytest.approx(0.4)

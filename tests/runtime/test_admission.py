"""Tests for online admission control."""

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.odm import OffloadingDecisionManager
from repro.core.schedulability import theorem3_test
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.runtime.admission import AdmissionController


def _base_controller(extra_local: float = 0.0):
    tasks = TaskSet(
        [
            OffloadableTask(
                task_id="o", wcet=0.2, period=1.0,
                setup_time=0.02, compensation_time=0.2,
                benefit=BenefitFunction(
                    [BenefitPoint(0.0, 1.0), BenefitPoint(0.3, 5.0)]
                ),
            ),
        ]
        + ([Task("bg", extra_local, 1.0)] if extra_local else [])
    )
    decision = OffloadingDecisionManager("dp").decide(tasks)
    return AdmissionController(tasks, decision)


class TestIncrementalAdmission:
    def test_small_task_admitted_incrementally(self):
        controller = _base_controller()
        verdict = controller.try_admit(Task("new", 0.1, 1.0))
        assert verdict.admitted
        assert verdict.mode == "incremental"
        assert verdict.changed_tasks == ()
        # existing decision untouched
        assert verdict.response_times["o"] == pytest.approx(0.3)
        assert verdict.response_times["new"] == 0.0

    def test_offloadable_newcomer_gets_best_feasible_point(self):
        controller = _base_controller()
        newcomer = OffloadableTask(
            task_id="new", wcet=0.15, period=1.0,
            setup_time=0.02, compensation_time=0.15,
            benefit=BenefitFunction(
                [BenefitPoint(0.0, 1.0), BenefitPoint(0.2, 9.0)]
            ),
        )
        verdict = controller.try_admit(newcomer)
        assert verdict.admitted
        assert verdict.mode == "incremental"
        assert verdict.response_times["new"] == pytest.approx(0.2)

    def test_verdict_is_feasible(self):
        controller = _base_controller()
        newcomer = Task("new", 0.3, 1.0)
        verdict = controller.try_admit(newcomer)
        union = TaskSet(list(controller.tasks) + [newcomer])
        from repro.core.schedulability import OffloadAssignment

        assignments = [
            OffloadAssignment(tid, r)
            for tid, r in verdict.response_times.items() if r > 0
        ]
        assert theorem3_test(union, assignments).feasible


class TestReplanAdmission:
    def test_big_task_forces_replan(self):
        """The newcomer doesn't fit next to the existing offload; the
        controller re-plans (existing task may fall back to local)."""
        controller = _base_controller()
        # current: o offloaded at rate (0.02+0.2)/0.7 ~ 0.314
        newcomer = Task("new", 0.75, 1.0)
        verdict = controller.try_admit(newcomer)
        assert verdict.admitted
        assert verdict.mode == "replan"
        assert "o" in verdict.changed_tasks
        assert verdict.response_times["o"] == 0.0  # forced local

    def test_impossible_task_rejected(self):
        controller = _base_controller(extra_local=0.5)
        verdict = controller.try_admit(Task("new", 0.4, 1.0))
        assert not verdict.admitted
        assert verdict.mode == "rejected"


class TestApply:
    def test_apply_updates_state(self):
        controller = _base_controller()
        newcomer = Task("new", 0.1, 1.0)
        verdict = controller.try_admit(newcomer)
        controller.apply(newcomer, verdict)
        assert "new" in controller.tasks
        assert controller.decision.response_times["new"] == 0.0
        # a second admission builds on the updated state
        second = controller.try_admit(Task("new2", 0.1, 1.0))
        assert second.admitted

    def test_apply_rejected_verdict_raises(self):
        controller = _base_controller(extra_local=0.5)
        newcomer = Task("new", 0.4, 1.0)
        verdict = controller.try_admit(newcomer)
        with pytest.raises(ValueError):
            controller.apply(newcomer, verdict)

    def test_duplicate_admission_rejected(self):
        controller = _base_controller()
        with pytest.raises(ValueError, match="already admitted"):
            controller.try_admit(Task("o", 0.1, 1.0))

    def test_sequential_admissions_until_full(self):
        """Admit small tasks until the budget is exhausted; every
        intermediate state stays feasible."""
        controller = _base_controller()
        admitted = 0
        for k in range(12):
            newcomer = Task(f"n{k}", 0.08, 1.0)
            verdict = controller.try_admit(newcomer)
            if not verdict.admitted:
                break
            controller.apply(newcomer, verdict)
            admitted += 1
            assert controller.decision.schedulability.feasible
        assert 3 <= admitted < 12  # budget genuinely binds

"""Tests for the energy accounting extension."""

import pytest

from repro.runtime.energy import (
    EnergyReport,
    PowerModel,
    compare_energy,
    energy_report,
)
from repro.runtime.system import OffloadingSystem
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sim.engine import Simulator
from repro.sim.trace import Trace
from repro.vision.tasks import table1_task_set


class TestPowerModel:
    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(active_power=-1.0)

    def test_idle_above_active_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(active_power=0.5, idle_power=1.0)


class TestEnergyReport:
    def _trace(self):
        trace = Trace()
        trace.record_segment("a", 0, "local", 0.0, 2.0)
        trace.record_segment("a", 1, "setup", 3.0, 4.0)
        trace.record_segment("a", 1, "compensation", 5.0, 6.0)
        return trace

    def test_phase_breakdown(self):
        report = energy_report(self._trace(), horizon=10.0)
        assert report.phase_time == {
            "local": 2.0, "setup": 1.0, "compensation": 1.0,
        }
        assert report.idle_time == pytest.approx(6.0)

    def test_energy_integration(self):
        power = PowerModel(active_power=2.0, idle_power=0.5, tx_power=1.0)
        report = energy_report(self._trace(), horizon=10.0, power=power)
        # local 2s*2W + setup 1s*(2+1)W + comp 1s*2W + idle 6s*0.5W
        assert report.total_energy == pytest.approx(4 + 3 + 2 + 3)
        assert report.average_power == pytest.approx(1.2)

    def test_segments_clipped_to_horizon(self):
        trace = Trace()
        trace.record_segment("a", 0, "local", 0.0, 5.0)
        report = energy_report(trace, horizon=2.0)
        assert report.phase_time["local"] == pytest.approx(2.0)
        assert report.idle_time == pytest.approx(0.0)

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            energy_report(Trace(), horizon=0.0)

    def test_empty_trace_is_all_idle(self):
        report = energy_report(Trace(), horizon=4.0)
        assert report.busy_time == 0.0
        assert report.total_energy == pytest.approx(0.3 * 4.0)


class TestCompare:
    def test_horizon_mismatch_rejected(self):
        a = EnergyReport(horizon=1.0)
        b = EnergyReport(horizon=2.0)
        with pytest.raises(ValueError):
            compare_energy(a, b)

    def test_offloading_saves_energy_on_idle_server(self):
        """The case study tasks are compute-heavy: shipping them to the
        server (tiny setup vs large avoided C_i) cuts client energy."""
        tasks = table1_task_set()
        horizon = 10.0

        offload_trace = OffloadingSystem(
            tasks, scenario="idle", seed=1
        ).run(horizon).trace

        sim = Simulator()
        local_trace = OffloadingScheduler(sim, table1_task_set()).run(
            horizon
        )

        saving = compare_energy(
            energy_report(offload_trace, horizon),
            energy_report(local_trace, horizon),
        )
        assert saving > 0.1  # clearly positive, not a rounding artifact

    def test_dead_server_erases_most_savings(self):
        """When every offload compensates locally, energy is the local
        cost *plus* the wasted setup/tx — worse than pure local."""
        from repro.sched.transport import NeverRespondsTransport

        tasks = table1_task_set()
        from repro.core.odm import OffloadingDecisionManager

        decision = OffloadingDecisionManager("dp").decide(tasks)
        horizon = 10.0

        sim = Simulator()
        dead_trace = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=NeverRespondsTransport(),
        ).run(horizon)

        sim2 = Simulator()
        local_trace = OffloadingScheduler(sim2, table1_task_set()).run(
            horizon
        )

        saving = compare_energy(
            energy_report(dead_trace, horizon),
            energy_report(local_trace, horizon),
        )
        assert saving < 0.0

"""Unit tests for SystemReport computations on synthetic traces."""

import pytest

from repro.core.odm import OffloadingDecisionManager
from repro.runtime.report import SystemReport
from repro.sim.trace import Trace
from repro.vision.tasks import table1_task_set


def _decision():
    return OffloadingDecisionManager("dp").decide(table1_task_set())


def _report(jobs):
    """Build a report from (offloaded, returned, compensated, benefit,
    finished) tuples."""
    trace = Trace()
    for idx, (off, ret, comp, benefit, finished) in enumerate(jobs):
        rec = trace.record_release("t", idx, 0.0, 1.0)
        rec.offloaded = off
        rec.result_returned = ret
        rec.compensated = comp
        rec.benefit = benefit
        if finished:
            trace.record_finish("t", idx, 0.5)
    return SystemReport(decision=_decision(), trace=trace, horizon=10.0)


class TestCounting:
    def test_counts(self):
        report = _report([
            (True, True, False, 5.0, True),
            (True, False, True, 1.0, True),
            (False, False, False, 1.0, True),
            (False, False, False, 0.0, False),  # unfinished
        ])
        assert report.jobs_completed == 3
        assert report.offloaded_jobs == 2
        assert report.returned_jobs == 1
        assert report.compensated_jobs == 1
        assert report.realized_benefit == pytest.approx(7.0)

    def test_return_rate(self):
        report = _report([
            (True, True, False, 5.0, True),
            (True, False, True, 1.0, True),
        ])
        assert report.return_rate == pytest.approx(0.5)

    def test_return_rate_no_offloads_is_zero(self):
        report = _report([(False, False, False, 1.0, True)])
        assert report.return_rate == 0.0

    def test_deadlines(self):
        report = _report([(False, False, False, 1.0, True)])
        assert report.all_deadlines_met
        assert report.deadline_misses == 0

    def test_summary_text(self):
        report = _report([(True, True, False, 5.0, True)])
        text = report.summary()
        assert "server return rate: 100.0%" in text
        assert "realized benefit: 5.0000" in text


class TestQuickstartDocstring:
    def test_package_docstring_example_runs(self):
        """The >>> example in repro/__init__.py must actually work."""
        import doctest

        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0

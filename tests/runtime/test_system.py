"""Integration tests for the end-to-end OffloadingSystem facade."""

import pytest

from repro.runtime.system import OffloadingSystem
from repro.vision.tasks import table1_task_set


class TestOffloadingSystem:
    def test_unknown_scenario_rejected(self, table1_tasks):
        with pytest.raises(ValueError, match="unknown scenario"):
            OffloadingSystem(table1_tasks, scenario="weekend")

    def test_decision_cached(self, table1_tasks):
        system = OffloadingSystem(table1_tasks, scenario="idle")
        assert system.decide() is system.decide()

    def test_idle_run_end_to_end(self, table1_tasks):
        system = OffloadingSystem(table1_tasks, scenario="idle", seed=1)
        report = system.run(horizon=10.0)
        assert report.all_deadlines_met
        assert report.jobs_completed > 0
        assert report.offloaded_jobs > 0
        assert report.return_rate > 0.5  # idle server mostly succeeds
        assert report.realized_benefit > 0

    def test_busy_run_compensates_but_never_misses(self, table1_tasks):
        system = OffloadingSystem(table1_tasks, scenario="busy", seed=1)
        report = system.run(horizon=10.0)
        assert report.all_deadlines_met  # the hard guarantee
        assert report.return_rate < 0.5  # saturated server mostly late
        assert report.compensated_jobs > 0

    def test_idle_beats_busy_in_realized_benefit(self, table1_tasks):
        idle = OffloadingSystem(table1_tasks, scenario="idle", seed=2).run(
            10.0
        )
        busy = OffloadingSystem(
            table1_task_set(), scenario="busy", seed=2
        ).run(10.0)
        assert idle.realized_benefit > busy.realized_benefit

    def test_same_seed_reproducible(self, table1_tasks):
        a = OffloadingSystem(table1_tasks, scenario="not_busy", seed=7).run(
            5.0
        )
        b = OffloadingSystem(
            table1_task_set(), scenario="not_busy", seed=7
        ).run(5.0)
        assert a.realized_benefit == b.realized_benefit
        assert a.returned_jobs == b.returned_jobs

    def test_different_seeds_vary(self, table1_tasks):
        results = {
            OffloadingSystem(
                table1_task_set(), scenario="not_busy", seed=s
            ).run(5.0).realized_benefit
            for s in range(4)
        }
        assert len(results) > 1

    def test_report_summary_renders(self, table1_tasks):
        report = OffloadingSystem(table1_tasks, scenario="idle").run(5.0)
        text = report.summary()
        assert "realized benefit" in text
        assert "deadline misses: 0" in text

    def test_per_task_return_rate(self, table1_tasks):
        report = OffloadingSystem(
            table1_tasks, scenario="idle", seed=1
        ).run(10.0)
        rates = report.per_task_return_rate()
        assert set(rates) == set(report.decision.offloaded_task_ids)
        assert all(0.0 <= v <= 1.0 for v in rates.values())

    def test_heuristic_solver_also_runs(self, table1_tasks):
        report = OffloadingSystem(
            table1_tasks, scenario="idle", solver="heu_oe", seed=1
        ).run(5.0)
        assert report.all_deadlines_met
        assert report.decision.solver == "heu_oe"

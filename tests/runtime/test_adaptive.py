"""Tests for the adaptive re-estimation runtime."""

from dataclasses import replace

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import TaskSet
from repro.runtime.adaptive import AdaptiveOffloadingSystem
from repro.vision.tasks import table1_task_set


def _scaled_beliefs(tasks: TaskSet, factor: float) -> TaskSet:
    """Scale every benefit point's response time by ``factor``."""
    out = TaskSet()
    for t in tasks:
        points = [t.benefit.points[0]] + [
            BenefitPoint(p.response_time * factor, p.benefit,
                         p.setup_time, p.compensation_time, p.label)
            for p in t.benefit.points[1:]
        ]
        out.add(replace(t, benefit=BenefitFunction(points)))
    return out


class TestValidation:
    def test_bad_scenario(self, table1_tasks):
        with pytest.raises(ValueError):
            AdaptiveOffloadingSystem(table1_tasks, scenario="nope")

    def test_bad_alpha(self, table1_tasks):
        with pytest.raises(ValueError):
            AdaptiveOffloadingSystem(table1_tasks, alpha=0.0)

    def test_bad_max_step(self, table1_tasks):
        with pytest.raises(ValueError):
            AdaptiveOffloadingSystem(table1_tasks, max_step=1.0)

    def test_bad_window(self, table1_tasks):
        with pytest.raises(ValueError):
            AdaptiveOffloadingSystem(table1_tasks, window=0.0)

    def test_bad_num_windows(self, table1_tasks):
        system = AdaptiveOffloadingSystem(table1_tasks)
        with pytest.raises(ValueError):
            system.run(num_windows=0)


class TestAdaptation:
    @pytest.fixture(scope="class")
    def optimistic_run(self):
        """Beliefs 2.5x too fast on a moderately loaded server."""
        beliefs = _scaled_beliefs(table1_task_set(), 1 / 2.5)
        system = AdaptiveOffloadingSystem(
            beliefs, scenario="not_busy", seed=3, window=10.0
        )
        return system.run(num_windows=5)

    def test_never_misses_deadlines(self, optimistic_run):
        """Adaptation is about benefit; safety holds in every window."""
        assert all(w.deadline_misses == 0 for w in optimistic_run.windows)

    def test_return_rate_recovers(self, optimistic_run):
        first = optimistic_run.windows[0]
        last = optimistic_run.windows[-1]
        assert last.return_rate > first.return_rate
        assert last.compensation_rate < first.compensation_rate

    def test_corrections_grow_beliefs_upward(self, optimistic_run):
        """First window must push under-estimated response times up."""
        factors = optimistic_run.windows[0].correction_factors
        assert factors, "no task was corrected in window 0"
        assert all(f >= 1.0 for f in factors.values())

    def test_benefit_improves(self, optimistic_run):
        series = optimistic_run.series("realized_benefit")
        assert series[-1] > series[0]

    def test_correct_beliefs_stay_stable(self):
        """With accurate beliefs on an idle server, corrections hover
        near 1 and the return rate stays high from window 0."""
        system = AdaptiveOffloadingSystem(
            table1_task_set(), scenario="idle", seed=5, window=10.0
        )
        report = system.run(num_windows=3)
        assert report.windows[0].return_rate > 0.7
        for w in report.windows:
            for factor in w.correction_factors.values():
                assert 0.5 < factor < 1.5

    def test_window_records_complete(self, optimistic_run):
        for index, w in enumerate(optimistic_run.windows):
            assert w.window == index
            assert w.expected_benefit > 0
            assert set(w.response_times)  # decisions recorded

"""Documentation sanity: the API tour's snippets must actually run.

Extracts every ``python`` code fence from docs/API_TOUR.md and executes
them sequentially in one namespace (later snippets build on earlier
ones, as a reader would run them).
"""

import pathlib
import re

import pytest

DOC = pathlib.Path(__file__).parent.parent / "docs" / "API_TOUR.md"


def _snippets():
    text = DOC.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestApiTour:
    def test_doc_exists_with_snippets(self):
        assert DOC.exists()
        assert len(_snippets()) >= 8

    def test_all_snippets_execute(self, capsys):
        namespace = {}
        for index, snippet in enumerate(_snippets()):
            try:
                exec(compile(snippet, f"<api-tour:{index}>", "exec"),
                     namespace)
            except Exception as error:  # pragma: no cover - diagnostic
                pytest.fail(
                    f"API tour snippet {index} failed: {error}\n{snippet}"
                )

    def test_readme_quickstart_executes(self):
        readme = pathlib.Path(__file__).parent.parent / "README.md"
        snippets = re.findall(
            r"```python\n(.*?)```", readme.read_text(), flags=re.DOTALL
        )
        assert snippets, "README lost its quickstart"
        namespace = {}
        for snippet in snippets:
            exec(compile(snippet, "<readme>", "exec"), namespace)

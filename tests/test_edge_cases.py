"""Edge-case coverage across layers: boundaries the main suites skip."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.deadlines import split_deadlines
from repro.core.odm import OffloadingDecisionManager
from repro.core.schedulability import OffloadAssignment, theorem3_test
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.experiments.ablations import random_mckp
from repro.knapsack import solve_brute_force, solve_dp
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import FixedLatencyTransport
from repro.sim.engine import Simulator


class TestConstrainedDeadlinesEndToEnd:
    """The paper's announced D_i <= T_i extension, exercised through the
    entire pipeline."""

    def _constrained_task(self):
        return OffloadableTask(
            task_id="c", wcet=0.2, period=2.0, deadline=1.0,
            setup_time=0.03, compensation_time=0.2,
            benefit=BenefitFunction(
                [BenefitPoint(0.0, 1.0), BenefitPoint(0.4, 6.0)]
            ),
        )

    def test_theorem3_charges_density_not_utilization(self):
        task = self._constrained_task()
        result = theorem3_test(TaskSet([task]))
        assert result.total_demand_rate == pytest.approx(0.2)  # C/D

    def test_split_uses_the_deadline(self):
        split = split_deadlines(self._constrained_task(), 0.4)
        assert split.total_deadline == 1.0
        assert split.setup_deadline == pytest.approx(
            0.03 * 0.6 / 0.23
        )

    def test_odm_and_scheduler_respect_constrained_deadline(self):
        tasks = TaskSet([self._constrained_task(), Task("l", 0.2, 1.0)])
        decision = OffloadingDecisionManager("dp").decide(tasks)
        sim = Simulator()
        trace = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=FixedLatencyTransport(sim, latency=0.1),
        ).run(8.0)
        assert trace.all_deadlines_met
        for rec in trace.jobs_of("c"):
            assert rec.absolute_deadline == pytest.approx(rec.release + 1.0)


class TestZeroPostTime:
    def test_zero_post_completes_instantly_on_return(self):
        task = OffloadableTask(
            task_id="z", wcet=0.1, period=1.0,
            setup_time=0.02, compensation_time=0.1, post_time=0.0,
            benefit=BenefitFunction(
                [BenefitPoint(0.0, 1.0), BenefitPoint(0.3, 4.0)]
            ),
        )
        sim = Simulator()
        trace = OffloadingScheduler(
            sim, TaskSet([task]), response_times={"z": 0.3},
            transport=FixedLatencyTransport(sim, latency=0.05),
        ).run(2.5)
        assert trace.all_deadlines_met
        for rec in trace.jobs_of("z"):
            assert rec.result_returned
            # finish == setup end + latency (no post execution time)
            assert rec.response_time == pytest.approx(0.02 + 0.05)


class TestBoundBoundaries:
    def test_r_exactly_at_server_bound_counts_as_guaranteed(self):
        task = OffloadableTask(
            task_id="b", wcet=0.1, period=1.0,
            setup_time=0.02, compensation_time=0.1, post_time=0.01,
            server_response_bound=0.3,
            benefit=BenefitFunction(
                [BenefitPoint(0.0, 0.0), BenefitPoint(0.3, 1.0)]
            ),
        )
        assert task.result_guaranteed(0.3)
        assert task.second_phase_wcet(0.3) == 0.01

    def test_max_feasible_response_time_boundary(self):
        """R_i such that C1 + C2 == D − R exactly: the split is feasible
        with zero slack in the budgets."""
        task = OffloadableTask(
            task_id="x", wcet=0.3, period=1.0,
            setup_time=0.1, compensation_time=0.3,
            benefit=BenefitFunction(
                [BenefitPoint(0.0, 0.0), BenefitPoint(0.6, 1.0)]
            ),
        )
        split = split_deadlines(task, 0.6)  # slack = 0.4 = C1 + C2
        assert split.setup_deadline == pytest.approx(0.1)
        assert split.compensation_budget == pytest.approx(0.3)
        # alone on the CPU this is exactly schedulable
        result = theorem3_test(
            TaskSet([task]), [OffloadAssignment("x", 0.6)]
        )
        assert result.total_demand_rate == pytest.approx(1.0)
        assert result.feasible


class TestSchedulerTimingDetails:
    def test_back_to_back_jobs_no_drift(self):
        """Strictly periodic releases must not accumulate float drift
        over many periods."""
        tasks = TaskSet([Task("p", 0.01, 0.1)])
        sim = Simulator()
        trace = OffloadingScheduler(sim, tasks).run(9.95)
        releases = [j.release for j in trace.jobs_of("p")]
        assert len(releases) == 100
        assert releases[-1] == pytest.approx(9.9, abs=1e-9)

    def test_simultaneous_releases_all_served(self):
        tasks = TaskSet(
            [Task(f"t{i}", 0.05, 1.0) for i in range(8)]
        )
        sim = Simulator()
        trace = OffloadingScheduler(sim, tasks).run(1.0)
        assert len(trace.jobs) == 8
        assert trace.all_deadlines_met
        assert trace.busy_time() == pytest.approx(0.4)


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    low_res=st.integers(min_value=50, max_value=200),
)
@settings(max_examples=25, deadline=None)
def test_dp_resolution_monotonicity(seed, low_res):
    """A finer capacity quantization can never produce a worse DP value
    (weights are rounded up, so feasible sets only grow)."""
    rng = np.random.default_rng(seed)
    instance = random_mckp(rng, num_classes=4, items_per_class=3)
    coarse = solve_dp(instance, resolution=low_res)
    fine = solve_dp(instance, resolution=low_res * 20)
    if coarse is None:
        # infeasible at coarse quantization; fine may recover it
        return
    assert fine is not None
    assert fine.total_value >= coarse.total_value - 1e-9


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=20, deadline=None)
def test_odm_decision_weight_never_exceeds_capacity(seed):
    rng = np.random.default_rng(seed)
    from repro.workloads.generator import paper_simulation_task_set

    tasks = paper_simulation_task_set(rng, num_tasks=8)
    decision = OffloadingDecisionManager("dp").decide(tasks)
    assert decision.total_demand_rate <= 1.0 + 1e-9
    assert decision.schedulability.feasible

"""Cross-layer integration invariants.

These tests tie the analytical layer to the simulation layer: what the
ODM *expects* must match what the DES *realizes* under the conditions
the expectation was computed for.
"""

import pytest

from repro.core.odm import OffloadingDecisionManager
from repro.runtime.system import OffloadingSystem
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import FixedLatencyTransport
from repro.sim.engine import Simulator
from repro.vision.tasks import table1_task_set


class TestExpectedVsRealized:
    def test_perfect_server_realizes_expected_benefit_per_round(self):
        """With every result arriving instantly, each task's job earns
        exactly the benefit the MCKP valued it at."""
        tasks = table1_task_set()
        decision = OffloadingDecisionManager("dp").decide(tasks)
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=FixedLatencyTransport(sim, latency=0.001),
        )
        trace = scheduler.run(10.0)

        # per-job realized benefit == the decision's per-task value
        for task in tasks:
            r = decision.response_times[task.task_id]
            expected = (
                task.benefit.value(r) if r > 0
                else task.benefit.local_benefit
            ) * task.weight
            for rec in trace.jobs_of(task.task_id):
                assert rec.benefit == pytest.approx(expected)

    def test_total_benefit_scales_with_job_count(self):
        tasks = table1_task_set()
        decision = OffloadingDecisionManager("dp").decide(tasks)
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=FixedLatencyTransport(sim, latency=0.001),
        )
        trace = scheduler.run(10.0)
        expected_total = 0.0
        for task in tasks:
            r = decision.response_times[task.task_id]
            per_job = (
                task.benefit.value(r) if r > 0
                else task.benefit.local_benefit
            ) * task.weight
            expected_total += per_job * len(trace.jobs_of(task.task_id))
        assert trace.total_benefit() == pytest.approx(expected_total)


class TestTraceConservation:
    def test_busy_time_equals_executed_work(self):
        """Every unit of CPU time in the trace is attributable work;
        under the WCET model the totals are computable exactly."""
        tasks = table1_task_set()
        decision = OffloadingDecisionManager("dp").decide(tasks)
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=FixedLatencyTransport(sim, latency=0.001),
        )
        trace = scheduler.run(10.0)

        expected_work = 0.0
        for task in tasks:
            r = decision.response_times[task.task_id]
            n_jobs = len(
                [j for j in trace.jobs_of(task.task_id)
                 if j.finish is not None]
            )
            if r > 0:
                per_job = task.setup_time_at(r) + task.post_time
            else:
                per_job = task.wcet
            expected_work += per_job * n_jobs
        assert trace.busy_time() == pytest.approx(expected_work, rel=1e-6)

    def test_segments_never_overlap(self):
        """One CPU: execution segments must be disjoint."""
        report = OffloadingSystem(
            table1_task_set(), scenario="not_busy", seed=4
        ).run(8.0)
        segments = sorted(
            report.trace.segments, key=lambda s: (s.start, s.end)
        )
        for a, b in zip(segments, segments[1:]):
            assert a.end <= b.start + 1e-9, f"{a} overlaps {b}"

    def test_utilization_below_demand_rate(self):
        """Observed utilization can never exceed the admitted demand
        rate (the analysis budgets worst cases)."""
        tasks = table1_task_set()
        system = OffloadingSystem(tasks, scenario="idle", seed=2)
        report = system.run(10.0)
        assert report.trace.utilization(10.0) <= (
            report.decision.total_demand_rate + 1e-6
        )


class TestDecisionStability:
    def test_heu_never_beats_dp_on_believed_values(self):
        """DP is exact on the believed objective; the heuristic can only
        tie or lose there."""
        tasks = table1_task_set()
        dp = OffloadingDecisionManager("dp").decide(tasks)
        heu = OffloadingDecisionManager("heu_oe").decide(tasks)
        assert heu.expected_benefit <= dp.expected_benefit + 1e-9

    def test_weights_reorder_decisions(self):
        """Weight permutations must actually influence the decision —
        otherwise Figure 2's x-axis is meaningless."""
        decisions = set()
        for weights in [(1, 2, 3, 4), (4, 3, 2, 1), (4, 1, 3, 2)]:
            decision = OffloadingDecisionManager("dp").decide(
                table1_task_set(weights=weights)
            )
            decisions.add(tuple(sorted(decision.response_times.items())))
        assert len(decisions) > 1

"""Unit tests for deterministic named random streams."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams, derive_seed, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "network") == derive_seed(42, "network")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(42, "network") != derive_seed(42, "gpu")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "network") != derive_seed(2, "network")

    def test_fits_32_bits(self):
        for root in (0, 1, 2**31, 10**15):
            assert 0 <= derive_seed(root, "x") < 2**32


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=7)
        assert streams.get("a") is streams.get("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=7).get("net").random(5)
        b = RandomStreams(seed=7).get("net").random(5)
        np.testing.assert_array_equal(a, b)

    def test_streams_are_independent(self):
        """Drawing from one stream must not perturb another."""
        s1 = RandomStreams(seed=7)
        s2 = RandomStreams(seed=7)
        s1.get("other").random(1000)  # extra draws on a different stream
        np.testing.assert_array_equal(
            s1.get("net").random(5), s2.get("net").random(5)
        )

    def test_different_names_different_sequences(self):
        streams = RandomStreams(seed=7)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_different_sequences(self):
        a = RandomStreams(seed=1).get("x").random(5)
        b = RandomStreams(seed=2).get("x").random(5)
        assert not np.allclose(a, b)

    def test_reset_restarts_streams(self):
        streams = RandomStreams(seed=7)
        first = streams.get("x").random(3)
        streams.reset()
        again = streams.get("x").random(3)
        np.testing.assert_array_equal(first, again)

    def test_spawn_namespaces_children(self):
        parent = RandomStreams(seed=7)
        child_a = parent.spawn("serverA")
        child_b = parent.spawn("serverB")
        assert child_a.seed != child_b.seed
        # deterministic spawn
        assert RandomStreams(seed=7).spawn("serverA").seed == child_a.seed


class TestSpawnStreams:
    """SeedSequence-spawned stream families for parallel sweeps."""

    def test_deterministic(self):
        a = spawn_streams(42, 5)
        b = spawn_streams(42, 5)
        assert [s.seed for s in a] == [s.seed for s in b]

    def test_member_is_pure_function_of_seed_and_index(self):
        """Member i is identical no matter how large a family it came
        from — the property that makes chunked parallel sweeps match
        the serial run bit-for-bit."""
        small = spawn_streams(42, 3)
        large = spawn_streams(42, 10)
        for i in range(3):
            np.testing.assert_array_equal(
                small[i].get("x").random(8), large[i].get("x").random(8)
            )

    def test_children_are_pairwise_distinct(self):
        seeds = [s.seed for s in spawn_streams(7, 20)]
        assert len(set(seeds)) == len(seeds)

    def test_children_draw_independently(self):
        a, b = spawn_streams(7, 2)
        assert not np.allclose(
            a.get("x").random(8), b.get("x").random(8)
        )

    def test_different_roots_differ(self):
        assert [s.seed for s in spawn_streams(1, 4)] != [
            s.seed for s in spawn_streams(2, 4)
        ]

    def test_zero_and_negative_counts(self):
        assert spawn_streams(7, 0) == []
        with pytest.raises(ValueError):
            spawn_streams(7, -1)

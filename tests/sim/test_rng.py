"""Unit tests for deterministic named random streams."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "network") == derive_seed(42, "network")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(42, "network") != derive_seed(42, "gpu")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "network") != derive_seed(2, "network")

    def test_fits_32_bits(self):
        for root in (0, 1, 2**31, 10**15):
            assert 0 <= derive_seed(root, "x") < 2**32


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=7)
        assert streams.get("a") is streams.get("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=7).get("net").random(5)
        b = RandomStreams(seed=7).get("net").random(5)
        np.testing.assert_array_equal(a, b)

    def test_streams_are_independent(self):
        """Drawing from one stream must not perturb another."""
        s1 = RandomStreams(seed=7)
        s2 = RandomStreams(seed=7)
        s1.get("other").random(1000)  # extra draws on a different stream
        np.testing.assert_array_equal(
            s1.get("net").random(5), s2.get("net").random(5)
        )

    def test_different_names_different_sequences(self):
        streams = RandomStreams(seed=7)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_different_sequences(self):
        a = RandomStreams(seed=1).get("x").random(5)
        b = RandomStreams(seed=2).get("x").random(5)
        assert not np.allclose(a, b)

    def test_reset_restarts_streams(self):
        streams = RandomStreams(seed=7)
        first = streams.get("x").random(3)
        streams.reset()
        again = streams.get("x").random(3)
        np.testing.assert_array_equal(first, again)

    def test_spawn_namespaces_children(self):
        parent = RandomStreams(seed=7)
        child_a = parent.spawn("serverA")
        child_b = parent.spawn("serverB")
        assert child_a.seed != child_b.seed
        # deterministic spawn
        assert RandomStreams(seed=7).spawn("serverA").seed == child_a.seed

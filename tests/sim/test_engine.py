"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import (
    PRIORITY_DISPATCH,
    PRIORITY_RELEASE,
    SimulationError,
)


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_schedule_relative_delay(self, sim):
        fired = []
        sim.schedule(2.5, lambda ev: fired.append(ev.time))
        sim.run_until(10.0)
        assert fired == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(3.0, lambda ev: fired.append(ev.time))
        sim.run_until(10.0)
        assert fired == [3.0]

    def test_schedule_in_past_raises(self, sim):
        sim.schedule(1.0, lambda ev: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(2.0, lambda ev: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda ev: None)

    def test_nan_time_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda ev: None)

    def test_schedule_at_current_instant_allowed(self, sim):
        fired = []
        sim.schedule_at(0.0, lambda ev: fired.append(ev.time))
        sim.run_until(1.0)
        assert fired == [0.0]


class TestExecutionOrder:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda ev: order.append("c"))
        sim.schedule(1.0, lambda ev: order.append("a"))
        sim.schedule(2.0, lambda ev: order.append("b"))
        sim.run_until(5.0)
        assert order == ["a", "b", "c"]

    def test_same_time_priority_order(self, sim):
        order = []
        sim.schedule(1.0, lambda ev: order.append("dispatch"),
                     priority=PRIORITY_DISPATCH)
        sim.schedule(1.0, lambda ev: order.append("release"),
                     priority=PRIORITY_RELEASE)
        sim.run_until(2.0)
        assert order == ["release", "dispatch"]

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(1.5, lambda ev: times.append(sim.now))
        sim.run_until(2.0)
        assert times == [1.5]

    def test_callbacks_can_schedule_more_events(self, sim):
        fired = []

        def chain(ev):
            fired.append(ev.time)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]


class TestRunSemantics:
    def test_run_until_includes_horizon_events(self, sim):
        fired = []
        sim.schedule_at(5.0, lambda ev: fired.append(ev.time))
        sim.run_until(5.0)
        assert fired == [5.0]

    def test_run_until_advances_clock_to_horizon(self, sim):
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_run_until_backward_raises(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(3.0)

    def test_events_after_horizon_survive(self, sim):
        fired = []
        sim.schedule_at(8.0, lambda ev: fired.append(ev.time))
        sim.run_until(5.0)
        assert fired == []
        sim.run_until(10.0)
        assert fired == [8.0]

    def test_run_all_drains_heap(self, sim):
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda ev: fired.append(ev.time))
        sim.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_all_guards_against_cascade(self, sim):
        def rearm(ev):
            sim.schedule(0.001, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run_all(max_events=100)

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda ev: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda ev: fired.append(2))
        sim.run_until(5.0)
        assert fired == [1]
        sim.resume()
        sim.run_until(5.0)
        assert fired == [1, 2]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        ev = sim.schedule(1.0, lambda e: fired.append(1))
        ev.cancel()
        sim.run_until(5.0)
        assert fired == []

    def test_peek_time_skips_cancelled(self, sim):
        ev = sim.schedule(1.0, lambda e: None)
        sim.schedule(2.0, lambda e: None)
        ev.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self, sim):
        assert sim.peek_time() is None


class TestIntrospection:
    def test_events_processed_counts_fired_only(self, sim):
        ev = sim.schedule(1.0, lambda e: None)
        sim.schedule(2.0, lambda e: None)
        ev.cancel()
        sim.run_until(5.0)
        assert sim.events_processed == 1

    def test_pending_events_sorted_and_live(self, sim):
        sim.schedule(2.0, lambda e: None, name="b")
        ev = sim.schedule(1.0, lambda e: None, name="a")
        sim.schedule(3.0, lambda e: None, name="c")
        ev.cancel()
        names = [e.name for e in sim.pending_events()]
        assert names == ["b", "c"]

"""Unit tests for the event primitives."""

import pytest

from repro.sim.events import (
    PRIORITY_DISPATCH,
    PRIORITY_NORMAL,
    PRIORITY_RELEASE,
    PRIORITY_TIMER,
    Event,
)


class TestEventOrdering:
    def test_ordered_by_time_first(self):
        early = Event(time=1.0, priority=PRIORITY_DISPATCH)
        late = Event(time=2.0, priority=PRIORITY_RELEASE)
        assert early < late

    def test_same_time_ordered_by_priority(self):
        release = Event(time=1.0, priority=PRIORITY_RELEASE)
        normal = Event(time=1.0, priority=PRIORITY_NORMAL)
        dispatch = Event(time=1.0, priority=PRIORITY_DISPATCH)
        assert release < normal < dispatch

    def test_same_time_same_priority_fifo(self):
        first = Event(time=1.0)
        second = Event(time=1.0)
        assert first < second  # sequence numbers increase

    def test_priority_constants_are_ordered(self):
        assert (
            PRIORITY_RELEASE
            < PRIORITY_TIMER
            < PRIORITY_NORMAL
            < PRIORITY_DISPATCH
        )


class TestEventLifecycle:
    def test_fire_invokes_callback_with_event(self):
        seen = []
        ev = Event(time=1.0, callback=seen.append)
        ev.fire()
        assert seen == [ev]

    def test_fire_without_callback_is_noop(self):
        Event(time=1.0).fire()  # must not raise

    def test_cancel_marks_event(self):
        ev = Event(time=1.0)
        assert not ev.cancelled
        ev.cancel()
        assert ev.cancelled

    def test_cancel_is_idempotent(self):
        ev = Event(time=1.0)
        ev.cancel()
        ev.cancel()
        assert ev.cancelled

    def test_payload_carried(self):
        ev = Event(time=0.0, payload={"k": 1})
        assert ev.payload == {"k": 1}

"""Unit tests for schedule tracing."""

import pytest

from repro.sim.trace import Trace


def _trace_with_one_job(finish=0.5, deadline=1.0):
    trace = Trace()
    trace.record_release("t1", 0, 0.0, deadline)
    trace.record_segment("t1", 0, "local", 0.0, finish)
    trace.record_finish("t1", 0, finish)
    return trace


class TestJobLifecycle:
    def test_release_creates_record(self):
        trace = Trace()
        rec = trace.record_release("t1", 0, 1.0, 2.0)
        assert rec.release == 1.0
        assert rec.absolute_deadline == 2.0
        assert rec.finish is None
        assert rec.response_time is None
        assert rec.met_deadline is None

    def test_finish_sets_response_time(self):
        trace = _trace_with_one_job(finish=0.5)
        rec = trace.job("t1", 0)
        assert rec.response_time == 0.5
        assert rec.met_deadline is True

    def test_finish_for_unknown_job_raises(self):
        with pytest.raises(KeyError):
            Trace().record_finish("ghost", 0, 1.0)

    def test_jobs_of_returns_in_order(self):
        trace = Trace()
        for j in range(3):
            trace.record_release("t1", j, float(j), float(j) + 1.0)
        trace.record_release("t2", 0, 0.0, 1.0)
        assert [r.job_id for r in trace.jobs_of("t1")] == [0, 1, 2]


class TestDeadlineMisses:
    def test_on_time_is_not_a_miss(self):
        trace = _trace_with_one_job(finish=1.0, deadline=1.0)
        assert trace.all_deadlines_met
        assert trace.deadline_miss_count == 0

    def test_late_finish_recorded_as_miss(self):
        trace = _trace_with_one_job(finish=1.5, deadline=1.0)
        assert not trace.all_deadlines_met
        assert trace.deadline_miss_count == 1
        miss = trace.misses[0]
        assert miss.lateness == pytest.approx(0.5)

    def test_tiny_float_overrun_tolerated(self):
        trace = _trace_with_one_job(finish=1.0 + 1e-12, deadline=1.0)
        assert trace.all_deadlines_met


class TestSegments:
    def test_zero_length_segment_dropped(self):
        trace = Trace()
        trace.record_segment("t1", 0, "local", 1.0, 1.0)
        assert trace.segments == []

    def test_negative_segment_raises(self):
        with pytest.raises(ValueError):
            Trace().record_segment("t1", 0, "local", 2.0, 1.0)

    def test_busy_time_sums_segments(self):
        trace = Trace()
        trace.record_segment("a", 0, "local", 0.0, 1.0)
        trace.record_segment("b", 0, "setup", 2.0, 2.5)
        assert trace.busy_time() == pytest.approx(1.5)

    def test_busy_time_clips_to_window(self):
        trace = Trace()
        trace.record_segment("a", 0, "local", 0.0, 4.0)
        assert trace.busy_time(1.0, 3.0) == pytest.approx(2.0)

    def test_utilization(self):
        trace = Trace()
        trace.record_segment("a", 0, "local", 0.0, 2.0)
        assert trace.utilization(4.0) == pytest.approx(0.5)

    def test_utilization_requires_positive_horizon(self):
        with pytest.raises(ValueError):
            Trace().utilization(0.0)


class TestAggregates:
    def test_compensation_rate_counts_offloaded_only(self):
        trace = Trace()
        for j, (off, comp) in enumerate(
            [(True, True), (True, False), (False, False)]
        ):
            rec = trace.record_release("t1", j, 0.0, 1.0)
            rec.offloaded = off
            rec.compensated = comp
        assert trace.compensation_rate() == pytest.approx(0.5)

    def test_compensation_rate_empty_is_zero(self):
        assert Trace().compensation_rate() == 0.0

    def test_total_benefit_sums(self):
        trace = Trace()
        for j, benefit in enumerate([1.0, 2.5]):
            rec = trace.record_release("t1", j, 0.0, 1.0)
            rec.benefit = benefit
        assert trace.total_benefit() == pytest.approx(3.5)

    def test_response_times_finished_only(self):
        trace = Trace()
        trace.record_release("t1", 0, 0.0, 1.0)
        trace.record_finish("t1", 0, 0.4)
        trace.record_release("t1", 1, 1.0, 2.0)  # unfinished
        assert trace.response_times("t1") == [pytest.approx(0.4)]


class TestGantt:
    def test_empty_trace(self):
        assert Trace().gantt() == "(empty trace)"

    def test_rows_per_task_and_glyphs(self):
        trace = Trace()
        trace.record_segment("a", 0, "local", 0.0, 1.0)
        trace.record_segment("b", 0, "setup", 1.0, 2.0)
        art = trace.gantt(width=20)
        lines = art.splitlines()
        assert "a" in lines[0] and "#" in lines[0]
        assert "b" in lines[1] and "s" in lines[1]

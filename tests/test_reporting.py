"""Tests for the reporting/export module."""

import json

import pytest

from repro.reporting.export import (
    series_to_csv,
    trace_to_json,
    trace_to_records,
    trace_to_svg,
)
from repro.runtime.system import OffloadingSystem
from repro.sim.trace import Trace
from repro.vision.tasks import table1_task_set


@pytest.fixture(scope="module")
def real_trace():
    return OffloadingSystem(
        table1_task_set(), scenario="idle", seed=1
    ).run(6.0).trace


class TestRecords:
    def test_shapes(self, real_trace):
        records = trace_to_records(real_trace)
        assert set(records) == {
            "jobs", "segments", "misses", "subjob_events",
        }
        assert len(records["jobs"]) == len(real_trace.jobs)
        assert len(records["segments"]) == len(real_trace.segments)
        assert len(records["subjob_events"]) == len(
            real_trace.subjob_events
        )
        kinds = {e["kind"] for e in records["subjob_events"]}
        assert kinds <= {"submitted", "completed"}

    def test_job_fields_plain_types(self, real_trace):
        job = trace_to_records(real_trace)["jobs"][0]
        for key in ("task_id", "release", "benefit", "offloaded"):
            assert key in job
        assert isinstance(job["offloaded"], bool)

    def test_json_round_trips(self, real_trace):
        parsed = json.loads(trace_to_json(real_trace))
        assert parsed["jobs"]
        assert parsed["misses"] == []

    def test_miss_records(self):
        trace = Trace()
        trace.record_release("t", 0, 0.0, 1.0)
        trace.record_finish("t", 0, 1.5)
        records = trace_to_records(trace)
        assert records["misses"][0]["lateness"] == pytest.approx(0.5)


class TestCsv:
    def test_columns_to_rows(self):
        text = series_to_csv({"x": [1, 2], "y": [0.5, 0.25]})
        lines = text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,0.5"
        assert lines[2] == "2,0.25"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            series_to_csv({"x": [1], "y": [1, 2]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_to_csv({})


class TestSvg:
    def test_empty_trace_placeholder(self):
        svg = trace_to_svg(Trace())
        assert svg.startswith("<svg")
        assert "empty trace" in svg

    def test_real_trace_renders_all_tasks(self, real_trace):
        svg = trace_to_svg(real_trace)
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        for task_id in ("tau1", "tau2", "tau3", "tau4"):
            assert task_id in svg
        assert "<rect" in svg

    def test_misses_marked(self):
        trace = Trace()
        trace.record_release("t", 0, 0.0, 1.0)
        trace.record_segment("t", 0, "local", 0.0, 1.5)
        trace.record_finish("t", 0, 1.5)
        svg = trace_to_svg(trace, horizon=2.0)
        assert "&#10007;" in svg  # the miss cross

    def test_phase_colors_distinct(self, real_trace):
        svg = trace_to_svg(real_trace)
        # setup and post phases from offloaded tasks must be present
        assert "#e3a85c" in svg  # setup
        assert "#6aa86a" in svg or "#c85c5c" in svg  # post or comp

"""CLI smoke tests: every subcommand runs and prints its artifact."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSubcommands:
    def test_demo(self, capsys):
        assert main(["demo", "--horizon", "4"]) == 0
        out = capsys.readouterr().out
        assert "realized benefit" in out
        assert "deadline misses: 0" in out

    def test_demo_busy_scenario(self, capsys):
        assert main(["demo", "--scenario", "busy", "--horizon", "4"]) == 0
        assert "decision" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1", "--samples", "15"]) == 0
        out = capsys.readouterr().out
        assert "tau4" in out and "measured" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--task-sets", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "dp" in out

    def test_ablation_solvers(self, capsys):
        assert main(["ablation-solvers", "--instances", "3"]) == 0
        out = capsys.readouterr().out
        assert "heu_oe" in out

    def test_ablation_pessimism(self, capsys):
        assert main(["ablation-pessimism", "--configs", "6"]) == 0
        out = capsys.readouterr().out
        assert "unsound (must be 0): 0" in out

    def test_ablation_split(self, capsys):
        assert main(["ablation-split", "--sets", "3"]) == 0
        out = capsys.readouterr().out
        assert "split" in out and "naive" in out

    def test_seed_flag_changes_nothing_structural(self, capsys):
        assert main(["--seed", "5", "demo", "--horizon", "3"]) == 0
        assert "decision" in capsys.readouterr().out

    def test_chaos_short(self, capsys):
        assert main(["chaos", "--seed", "0", "--short"]) == 0
        out = capsys.readouterr().out
        assert "hard-deadline invariant: OK" in out
        assert "circuit breaker" in out

    def test_chaos_outage_profile_trips_breaker(self, capsys):
        assert main(
            ["chaos", "--profile", "outage", "--windows", "8",
             "--window", "4", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "trips=1" in out
        assert "benefit recovery" in out

    def test_ablation_split_policy(self, capsys):
        assert main(["ablation-split-policy", "--configs", "5"]) == 0
        out = capsys.readouterr().out
        assert "proportional" in out and "unsound=0" in out

    def test_ablation_baselines(self, capsys):
        assert main(["ablation-baselines", "--horizon", "6"]) == 0
        out = capsys.readouterr().out
        assert "compensation" in out and "reservation" in out

    def test_energy(self, capsys):
        assert main(["energy", "--horizon", "6"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out and "J" in out

    def test_topology_sweep_smoke(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "topology.json"
        assert main(
            ["topology-sweep", "--smoke", "--samples", "16",
             "--resolution", "400", "--verify-parallel", "2",
             "--workers", "1", "--out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "topology sweep:" in out
        assert "bit-for-bit identical" in out
        assert "0 anomalies" in out
        data = json.loads(out_path.read_text())
        assert data["ok"] is True
        assert data["serial_parallel_identical"] is True

"""Tests for server probing, benefit building, and error injection."""

import numpy as np
import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.estimator.benefit_builder import (
    probability_benefit,
    quality_benefit,
)
from repro.estimator.errors import evaluate_true_benefit, perturb_task_set
from repro.estimator.response_time import EmpiricalResponseTimes
from repro.estimator.sampling import probe_server
from repro.server.scenarios import SCENARIOS


class TestProbeServer:
    def test_collects_samples_per_level(self):
        collections = probe_server(
            SCENARIOS["idle"], levels=[0.1, 0.2],
            samples_per_level=20, inter_arrival=0.3, seed=1,
        )
        assert set(collections) == {0.1, 0.2}
        for est in collections.values():
            assert len(est) >= 15  # a few may be lost

    def test_bigger_levels_take_longer(self):
        collections = probe_server(
            SCENARIOS["idle"], levels=[0.1, 0.4],
            samples_per_level=30, inter_arrival=0.3, seed=2,
        )
        assert (
            collections[0.4].percentile(50)
            > collections[0.1].percentile(50)
        )

    def test_busy_scenario_slower_than_idle(self):
        idle = probe_server(
            SCENARIOS["idle"], levels=[0.2], samples_per_level=30, seed=3
        )[0.2]
        busy = probe_server(
            SCENARIOS["busy"], levels=[0.2], samples_per_level=30, seed=3
        )[0.2]
        assert busy.percentile(50) > idle.percentile(50)

    def test_validation(self):
        with pytest.raises(ValueError):
            probe_server(SCENARIOS["idle"], levels=[])
        with pytest.raises(ValueError):
            probe_server(SCENARIOS["idle"], levels=[0.1],
                         samples_per_level=0)


class TestQualityBenefit:
    def _samples(self, center):
        return EmpiricalResponseTimes(
            [center * (0.9 + 0.01 * k) for k in range(20)]
        )

    def test_builds_increasing_function(self):
        levels = {0.5: self._samples(0.10), 0.8: self._samples(0.20)}
        qualities = {0.5: 25.0, 0.8: 35.0}
        fn = quality_benefit(20.0, levels, qualities, percentile=90)
        assert fn.local_benefit == 20.0
        assert fn.num_points == 3
        assert fn.max_benefit == 35.0

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError, match="keys"):
            quality_benefit(20.0, {0.5: self._samples(0.1)}, {0.8: 30.0})

    def test_overlapping_levels_merged(self):
        """Two levels with identical distributions collapse to the better
        quality."""
        levels = {0.5: self._samples(0.10), 0.6: self._samples(0.10)}
        qualities = {0.5: 25.0, 0.6: 30.0}
        fn = quality_benefit(20.0, levels, qualities)
        assert fn.num_points == 2
        assert fn.max_benefit == 30.0

    def test_worse_quality_slower_level_dropped(self):
        levels = {0.5: self._samples(0.10), 0.3: self._samples(0.20)}
        qualities = {0.5: 30.0, 0.3: 25.0}  # slower AND worse
        fn = quality_benefit(20.0, levels, qualities)
        assert fn.num_points == 2
        assert fn.max_benefit == 30.0

    def test_empty_level_skipped(self):
        levels = {0.5: self._samples(0.1), 0.8: EmpiricalResponseTimes()}
        qualities = {0.5: 25.0, 0.8: 35.0}
        fn = quality_benefit(20.0, levels, qualities)
        assert fn.num_points == 2

    def test_setup_overrides_attached(self):
        levels = {0.5: self._samples(0.1)}
        qualities = {0.5: 25.0}
        fn = quality_benefit(
            20.0, levels, qualities,
            level_setup_times={0.5: 0.03},
            level_compensation_times={0.5: 0.2},
        )
        point = fn.points[1]
        assert point.setup_time == 0.03
        assert point.compensation_time == 0.2


class TestProbabilityBenefit:
    def test_matches_empirical_cdf(self):
        samples = EmpiricalResponseTimes([0.1, 0.2, 0.3, 0.4])
        fn = probability_benefit(samples, [0.25, 0.45])
        assert fn.value(0.25) == pytest.approx(0.5)
        assert fn.value(0.45) == pytest.approx(1.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            probability_benefit(EmpiricalResponseTimes(), [0.1])


class TestErrorInjection:
    def _tasks(self):
        benefit = BenefitFunction(
            [
                BenefitPoint(0.0, 0.0),
                BenefitPoint(0.10, 0.4),
                BenefitPoint(0.20, 0.8),
            ]
        )
        return TaskSet(
            [
                OffloadableTask(
                    task_id="o", wcet=0.02, period=0.6,
                    setup_time=0.01, compensation_time=0.02,
                    benefit=benefit,
                ),
                Task("plain", 0.05, 1.0),
            ]
        )

    def test_zero_ratio_preserves_values(self):
        tasks = self._tasks()
        perturbed = perturb_task_set(tasks, 0.0)
        assert perturbed["o"].benefit == tasks["o"].benefit

    def test_positive_ratio_inflates_beliefs(self):
        perturbed = perturb_task_set(self._tasks(), 1.0)
        # believed G(0.10) = true G(0.20) = 0.8
        assert perturbed["o"].benefit.point_at(0.10).benefit == pytest.approx(
            0.8
        )

    def test_negative_ratio_deflates_beliefs(self):
        perturbed = perturb_task_set(self._tasks(), -0.6)
        # believed G(0.20) = true G(0.08) = 0.0
        assert perturbed["o"].benefit.point_at(0.20).benefit == pytest.approx(
            0.0
        )

    def test_plain_tasks_pass_through(self):
        perturbed = perturb_task_set(self._tasks(), 0.3)
        assert perturbed["plain"].wcet == 0.05

    def test_timing_parameters_unchanged(self):
        perturbed = perturb_task_set(self._tasks(), 0.3)
        task = perturbed["o"]
        assert task.wcet == 0.02
        assert task.setup_time == 0.01
        assert task.period == 0.6

    def test_evaluate_true_benefit(self):
        tasks = self._tasks()
        score = evaluate_true_benefit(tasks, {"o": 0.20, "plain": 0.0})
        assert score == pytest.approx(0.8)
        score_local = evaluate_true_benefit(tasks, {"o": 0.0})
        assert score_local == pytest.approx(0.0)

    def test_evaluate_respects_weights(self):
        tasks = self._tasks()
        from dataclasses import replace

        weighted = TaskSet(
            [replace(tasks["o"], weight=3.0), tasks["plain"]]
        )
        score = evaluate_true_benefit(weighted, {"o": 0.20})
        assert score == pytest.approx(2.4)

"""Unit tests for empirical response-time estimation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimator.response_time import EmpiricalResponseTimes


class TestCollection:
    def test_add_and_len(self):
        est = EmpiricalResponseTimes([0.1, 0.2])
        est.add(0.3)
        assert len(est) == 3

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalResponseTimes([-0.1])

    def test_samples_sorted(self):
        est = EmpiricalResponseTimes([0.3, 0.1, 0.2])
        assert est.samples == (0.1, 0.2, 0.3)

    def test_extend(self):
        est = EmpiricalResponseTimes()
        est.extend([0.1, 0.2])
        assert len(est) == 2


class TestStatistics:
    def test_mean(self):
        est = EmpiricalResponseTimes([0.1, 0.3])
        assert est.mean() == pytest.approx(0.2)

    def test_percentile_endpoints(self):
        est = EmpiricalResponseTimes([0.1, 0.2, 0.3, 0.4])
        assert est.percentile(0) == pytest.approx(0.1)
        assert est.percentile(100) == pytest.approx(0.4)

    def test_percentile_out_of_range(self):
        est = EmpiricalResponseTimes([0.1])
        with pytest.raises(ValueError):
            est.percentile(101)

    def test_empty_queries_raise(self):
        est = EmpiricalResponseTimes()
        with pytest.raises(ValueError):
            est.mean()
        with pytest.raises(ValueError):
            est.percentile(50)
        with pytest.raises(ValueError):
            est.success_probability(0.1)

    def test_success_probability(self):
        est = EmpiricalResponseTimes([0.1, 0.2, 0.3, 0.4])
        assert est.success_probability(0.25) == pytest.approx(0.5)
        assert est.success_probability(0.4) == pytest.approx(1.0)
        assert est.success_probability(0.05) == 0.0


class TestCandidates:
    def test_candidates_increasing_and_deduplicated(self):
        est = EmpiricalResponseTimes([0.1] * 10 + [0.5])
        candidates = est.candidate_response_times((50, 75, 90, 95))
        assert candidates == sorted(candidates)
        assert len(candidates) == len(set(candidates))

    def test_default_percentiles(self):
        est = EmpiricalResponseTimes([float(i) / 100 for i in range(1, 101)])
        candidates = est.candidate_response_times()
        assert len(candidates) == 4


@given(
    st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
    st.floats(min_value=0, max_value=100),
)
@settings(max_examples=60)
def test_success_probability_is_valid_cdf(samples, r):
    est = EmpiricalResponseTimes(samples)
    p = est.success_probability(r)
    assert 0.0 <= p <= 1.0
    assert est.success_probability(r + 1.0) >= p


class TestBootstrapCI:
    def test_interval_contains_point_estimate(self):
        import numpy as np

        rng = np.random.default_rng(3)
        est = EmpiricalResponseTimes(rng.lognormal(0, 0.5, 200))
        low, high = est.percentile_confidence_interval(
            90, rng=np.random.default_rng(1)
        )
        point = est.percentile(90)
        assert low <= point <= high

    def test_more_samples_tighter_interval(self):
        import numpy as np

        rng = np.random.default_rng(4)
        small = EmpiricalResponseTimes(rng.lognormal(0, 0.5, 30))
        large = EmpiricalResponseTimes(rng.lognormal(0, 0.5, 3000))
        lo_s, hi_s = small.percentile_confidence_interval(
            90, rng=np.random.default_rng(2)
        )
        lo_l, hi_l = large.percentile_confidence_interval(
            90, rng=np.random.default_rng(2)
        )
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_validation(self):
        est = EmpiricalResponseTimes([0.1, 0.2])
        with pytest.raises(ValueError):
            est.percentile_confidence_interval(90, confidence=1.5)
        with pytest.raises(ValueError):
            est.percentile_confidence_interval(90, num_resamples=0)
        with pytest.raises(ValueError):
            EmpiricalResponseTimes().percentile_confidence_interval(90)

"""Tests for the prior-art baselines ([8] greedy, [10] reservation)."""

import pytest

from repro.baselines.greedy import GreedyOffloadScheduler
from repro.baselines.reservation import ReservationTransport
from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.experiments.baselines_comparison import (
    format_comparison,
    run_baseline_comparison,
)
from repro.sched.transport import (
    FixedLatencyTransport,
    NeverRespondsTransport,
    OffloadRequest,
)
from repro.sim.engine import Simulator


def _task(task_id="g", wcet=0.3, period=1.0, r=0.1, benefit_value=5.0):
    return OffloadableTask(
        task_id=task_id, wcet=wcet, period=period,
        setup_time=0.02, compensation_time=wcet, post_time=0.01,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 1.0), BenefitPoint(r, benefit_value)]
        ),
    )


class TestGreedyScheduler:
    def test_offloads_when_estimate_beats_local(self):
        tasks = TaskSet([_task()])
        sim = Simulator()
        scheduler = GreedyOffloadScheduler(
            sim, tasks, estimated_response={"g": 0.1},
            transport=FixedLatencyTransport(sim, latency=0.05),
        )
        trace = scheduler.run(2.5)
        assert all(rec.offloaded for rec in trace.jobs_of("g"))
        assert trace.all_deadlines_met
        # realized benefit = the offloaded level's quality
        assert trace.jobs_of("g")[0].benefit == pytest.approx(5.0)

    def test_stays_local_when_estimate_worse(self):
        tasks = TaskSet([_task(wcet=0.05)])  # local faster than estimate
        sim = Simulator()
        scheduler = GreedyOffloadScheduler(
            sim, tasks, estimated_response={"g": 0.1},
            transport=FixedLatencyTransport(sim, latency=0.05),
        )
        trace = scheduler.run(2.5)
        assert not any(rec.offloaded for rec in trace.jobs_of("g"))

    def test_dead_server_causes_misses(self):
        """The §2 critique: no compensation = hanging jobs = misses."""
        tasks = TaskSet([_task()])
        sim = Simulator()
        scheduler = GreedyOffloadScheduler(
            sim, tasks, estimated_response={"g": 0.1},
            transport=NeverRespondsTransport(),
        )
        trace = scheduler.run(3.0)
        assert trace.deadline_miss_count > 0

    def test_rejected_admission_falls_back_to_local(self):
        tasks = TaskSet([_task()])
        sim = Simulator()
        scheduler = GreedyOffloadScheduler(
            sim, tasks, estimated_response={"g": 0.1},
            transport=NeverRespondsTransport(),
            admission=lambda request: False,
        )
        trace = scheduler.run(2.5)
        assert trace.all_deadlines_met
        assert all(rec.compensated for rec in trace.jobs_of("g"))
        assert trace.jobs_of("g")[0].benefit == pytest.approx(1.0)

    def test_unknown_estimate_rejected(self):
        tasks = TaskSet([Task("t", 0.1, 1.0)])
        with pytest.raises(ValueError, match="unknown task"):
            GreedyOffloadScheduler(
                Simulator(), tasks, estimated_response={"zzz": 0.1},
                transport=NeverRespondsTransport(),
            )


class TestReservationTransport:
    def _request(self, sim, level=0.1):
        task = _task(r=level)
        return OffloadRequest(
            task=task, job_id=0, submitted_at=sim.now,
            response_budget=level, level_response_time=level,
        )

    def test_contract_bound(self, sim):
        reserved = ReservationTransport(sim, pessimism=2.0)
        assert reserved.contract_bound(0.1) == pytest.approx(0.2)

    def test_pessimism_below_one_rejected(self, sim):
        with pytest.raises(ValueError):
            ReservationTransport(sim, pessimism=0.9)

    def test_deterministic_delivery_at_bound(self, sim):
        reserved = ReservationTransport(sim, pessimism=1.5)
        arrivals = []
        request = self._request(sim, level=0.2)
        assert reserved.admit(request)
        reserved.submit(request, arrivals.append)
        sim.run_until(1.0)
        assert arrivals == [pytest.approx(0.3)]

    def test_admission_cap(self, sim):
        reserved = ReservationTransport(sim, max_inflight=2)
        requests = [self._request(sim) for _ in range(3)]
        assert reserved.admit(requests[0])
        assert reserved.admit(requests[1])
        assert not reserved.admit(requests[2])
        assert reserved.rejected == 1

    def test_slot_released_after_delivery(self, sim):
        reserved = ReservationTransport(sim, max_inflight=1)
        first = self._request(sim)
        assert reserved.admit(first)
        reserved.submit(first, lambda t: None)
        sim.run_until(1.0)
        assert reserved.admit(self._request(sim))


class TestComparisonDriver:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_baseline_comparison(seed=0)

    def test_compensation_never_misses(self, comparison):
        for scenario in comparison.outcomes:
            assert comparison.get(scenario, "compensation").deadline_misses == 0

    def test_greedy_fails_on_busy_server(self, comparison):
        assert comparison.get("busy", "greedy").deadline_misses > 0

    def test_greedy_safe_on_idle_server(self, comparison):
        assert comparison.get("idle", "greedy").deadline_misses == 0

    def test_reservation_always_safe(self, comparison):
        for scenario in comparison.outcomes:
            assert comparison.get(scenario, "reservation").deadline_misses == 0

    def test_compensation_beats_reservation_on_idle(self, comparison):
        """The paper's value proposition: exploit the unreliable
        component's real capacity instead of a pessimistic slice."""
        comp = comparison.get("idle", "compensation").useful_benefit
        reserved = comparison.get("idle", "reservation").useful_benefit
        assert comp > reserved

    def test_formatting(self, comparison):
        text = format_comparison(comparison)
        assert "compensation" in text and "reservation" in text

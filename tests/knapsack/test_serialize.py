"""Round-trip and rejection tests for the cache wire codec.

The fleet cache tier only stays an *optimization* if a decoded record
is indistinguishable from a locally computed one: keys must round-trip
with exact float equality (they are structural fingerprints), delta
states must resume the identical DP instruction stream, and anything
the codec cannot vouch for — wrong version, wrong kind, mangled
payload — must raise :class:`CacheCodecError` instead of
reconstructing garbage.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knapsack import MCKPItem, SolverCache, solve_delta, solve_dp
from repro.knapsack.serialize import (
    CACHE_WIRE_VERSION,
    CacheCodecError,
    decode_entry,
    decode_key,
    decode_state,
    encode_entry,
    encode_key,
    encode_state,
    encoded_size,
    key_fingerprint,
)
from tests.conftest import build_churned_instance, mckp_class_items

RESOLUTION = 2_000

instances = st.lists(
    mckp_class_items(), min_size=1, max_size=4
).map(build_churned_instance)


def _key(instance, **kwargs):
    kwargs.setdefault("resolution", RESOLUTION)
    return SolverCache.key_for("dp", instance, **kwargs)


def _small_instance(weight=0.5):
    return build_churned_instance(
        [(MCKPItem(value=1.0, weight=weight),)]
    )


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(instance=instances)
def test_key_roundtrip_is_exact(instance):
    key = _key(instance)
    # through the JSON text, not just the dict: the wire carries text
    record = json.loads(json.dumps(encode_key(key)))
    assert decode_key(record) == key


@settings(max_examples=40, deadline=None)
@given(instance=instances)
def test_entry_roundtrip_preserves_choices(instance):
    key = _key(instance)
    result = solve_dp(instance, resolution=RESOLUTION)
    choices = None if result is None else dict(result.choices)
    record = json.loads(json.dumps(encode_entry(key, choices)))
    decoded_key, decoded_choices = decode_entry(record)
    assert decoded_key == key
    assert decoded_choices == choices


def test_infeasible_entry_roundtrips_as_none():
    key = _key(_small_instance())
    _, choices = decode_entry(
        json.loads(json.dumps(encode_entry(key, None)))
    )
    assert choices is None


@settings(max_examples=20, deadline=None)
@given(instance=instances)
def test_state_roundtrip_resumes_identically(instance):
    first = solve_delta(instance, resolution=RESOLUTION)
    if first.state is None:  # degenerate empty/zero-capacity shortcut
        return
    key = _key(instance)
    record = json.loads(json.dumps(encode_state(key, first.state)))
    decoded_key, state = decode_state(record)
    assert decoded_key == key
    # the decoded state must warm-start to the bit-identical result a
    # locally held state produces, reusing every folded layer
    resumed = solve_delta(
        instance, resolution=RESOLUTION, state=state
    )
    assert resumed.reused_layers == first.state.num_layers
    first_choices = (
        None if first.selection is None else first.selection.choices
    )
    resumed_choices = (
        None if resumed.selection is None else resumed.selection.choices
    )
    assert resumed_choices == first_choices


@settings(max_examples=40, deadline=None)
@given(instance=instances)
def test_fingerprint_matches_across_roundtrip(instance):
    """Both sides of a sync derive one fingerprint for equal keys."""
    key = _key(instance)
    record = json.loads(json.dumps(encode_key(key)))
    assert key_fingerprint(decode_key(record)) == key_fingerprint(key)


# ----------------------------------------------------------------------
# rejection: version tags, kinds, malformed payloads
# ----------------------------------------------------------------------
def _entry_record():
    return encode_entry(_key(_small_instance(0.0)), {"c0": 0})


@pytest.mark.parametrize("version", [0, CACHE_WIRE_VERSION + 1, "1", None])
def test_wrong_version_is_rejected(version):
    record = _entry_record()
    record["v"] = version
    with pytest.raises(CacheCodecError, match="wire version"):
        decode_entry(record)


def test_wrong_kind_is_rejected():
    record = _entry_record()
    with pytest.raises(CacheCodecError, match="expected a 'state'"):
        decode_state(record)


def test_non_mapping_record_is_rejected():
    with pytest.raises(CacheCodecError, match="mapping"):
        decode_entry(["not", "a", "dict"])


@pytest.mark.parametrize(
    "mangle",
    [
        lambda r: r.pop("key"),
        lambda r: r["key"].pop("classes"),
        lambda r: r["key"].update(capacity="oops"),
        lambda r: r.update(choices=[["c0", "not-an-int"]]),
        lambda r: r.update(choices=123),
    ],
)
def test_malformed_entry_is_rejected(mangle):
    record = _entry_record()
    mangle(record)
    with pytest.raises((CacheCodecError, TypeError)):
        decode_entry(record)


def test_non_scalar_kwarg_value_fails_encode():
    with pytest.raises(CacheCodecError, match="JSON scalar"):
        encode_key(("dp", (("resolution", [1, 2]),), (1.0, ())))


def test_mangled_state_array_is_rejected():
    instance = _small_instance()
    state = solve_delta(instance, resolution=RESOLUTION).state
    record = encode_state(_key(instance), state)
    record["history"][0][0]["data"] = "!!!not-base64!!!"
    with pytest.raises(CacheCodecError):
        decode_state(record)


def test_state_array_length_mismatch_is_rejected():
    instance = _small_instance()
    state = solve_delta(instance, resolution=RESOLUTION).state
    record = encode_state(_key(instance), state)
    record["history"][0][0]["shape"] = [10_000]
    with pytest.raises(CacheCodecError, match="does not match"):
        decode_state(record)


# ----------------------------------------------------------------------
# size accounting
# ----------------------------------------------------------------------
def test_encoded_size_measures_compact_json():
    record = {"v": 1, "kind": "entry", "key": {"a": 1.5}}
    assert encoded_size(record) == len(
        json.dumps(record, separators=(",", ":")).encode("utf-8")
    )

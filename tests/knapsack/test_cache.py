"""Unit tests for the MCKP solver cache."""

import pytest

from repro.knapsack import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    SolverCache,
    canonical_instance_key,
    solve_delta,
    solve_dp,
)


def _instance(capacity=10.0, tags=("a", "b")):
    classes = (
        MCKPClass(
            "c0",
            (
                MCKPItem(value=1.0, weight=0.0, tag=tags[0]),
                MCKPItem(value=5.0, weight=4.0, tag=tags[1]),
            ),
        ),
        MCKPClass(
            "c1",
            (
                MCKPItem(value=2.0, weight=0.0),
                MCKPItem(value=9.0, weight=7.0),
            ),
        ),
    )
    return MCKPInstance(classes=classes, capacity=capacity)


def _infeasible():
    return MCKPInstance(
        classes=(MCKPClass("c0", (MCKPItem(value=1.0, weight=5.0),)),),
        capacity=1.0,
    )


def _counting(solver):
    calls = []

    def wrapped(instance, **kwargs):
        calls.append(instance)
        return solver(instance, **kwargs)

    return wrapped, calls


class TestCanonicalKey:
    def test_identical_structure_same_key(self):
        assert canonical_instance_key(_instance()) == canonical_instance_key(
            _instance()
        )

    def test_tags_do_not_affect_key(self):
        assert canonical_instance_key(
            _instance(tags=("a", "b"))
        ) == canonical_instance_key(_instance(tags=("x", "y")))

    def test_capacity_affects_key(self):
        assert canonical_instance_key(
            _instance(capacity=10.0)
        ) != canonical_instance_key(_instance(capacity=11.0))


class TestSolverCache:
    def test_miss_then_hit(self):
        cache = SolverCache()
        solver, calls = _counting(solve_dp)
        first = cache.solve("dp", solver, _instance(), resolution=100)
        second = cache.solve("dp", solver, _instance(), resolution=100)
        assert len(calls) == 1
        assert cache.stats == {
            "hits": 1,
            "misses": 1,
            "near_hits": 0,
            "hits_local": 1,
            "hits_replicated": 0,
            "replicated_in": 0,
            "replicated_states_in": 0,
            "entries": 1,
            "delta_states": 0,
        }
        assert second.choices == first.choices
        assert second.total_value == first.total_value

    def test_hit_rebinds_to_callers_instance(self):
        """The cached choices come back bound to the *caller's* instance,
        so its tags (response times in the ODM) are honoured."""
        cache = SolverCache()
        cache.solve("dp", solve_dp, _instance(tags=(0.0, 0.1)))
        mine = _instance(tags=(0.0, 0.25))
        hit = cache.solve("dp", solve_dp, mine)
        assert hit.instance is mine
        assert hit.item_for("c0").tag in (0.0, 0.25)

    def test_kwargs_distinguish_entries(self):
        cache = SolverCache()
        solver, calls = _counting(solve_dp)
        cache.solve("dp", solver, _instance(), resolution=10)
        cache.solve("dp", solver, _instance(), resolution=20)
        assert len(calls) == 2
        assert cache.misses == 2

    def test_solver_name_distinguishes_entries(self):
        cache = SolverCache()
        solver, calls = _counting(solve_dp)
        cache.solve("dp", solver, _instance())
        cache.solve("other", solver, _instance())
        assert len(calls) == 2

    def test_infeasible_none_is_cached(self):
        cache = SolverCache()
        solver, calls = _counting(solve_dp)
        assert cache.solve("dp", solver, _infeasible()) is None
        assert cache.solve("dp", solver, _infeasible()) is None
        assert len(calls) == 1
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = SolverCache(maxsize=2)
        a, b, c = (
            _instance(capacity=5.0),
            _instance(capacity=6.0),
            _instance(capacity=7.0),
        )
        solver, calls = _counting(solve_dp)
        cache.solve("dp", solver, a)
        cache.solve("dp", solver, b)
        cache.solve("dp", solver, c)  # evicts a (oldest)
        assert len(cache) == 2
        cache.solve("dp", solver, b)  # still cached
        assert cache.hits == 1
        cache.solve("dp", solver, a)  # evicted: recomputed
        assert len(calls) == 4

    def test_clear(self):
        cache = SolverCache()
        cache.solve("dp", solve_dp, _instance())
        cache.clear()
        assert len(cache) == 0
        cache.solve("dp", solve_dp, _instance())
        assert cache.misses == 2

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            SolverCache(maxsize=0)

    def test_invalid_delta_maxstates_rejected(self):
        with pytest.raises(ValueError):
            SolverCache(delta_maxstates=-1)


class TestDeltaStates:
    def _state_for(self, cache, instance, resolution=100):
        result = solve_delta(instance, resolution=resolution)
        key = cache.key_for("dp", instance, resolution=resolution)
        cache.store_state(key, result.state)
        return key, result

    def test_probe_returns_best_prefix_state(self):
        cache = SolverCache()
        short = _instance()
        longer = MCKPInstance(
            classes=short.classes
            + (MCKPClass("c2", (MCKPItem(value=3.0, weight=1.0),)),),
            capacity=short.capacity,
        )
        self._state_for(cache, short)
        _, long_result = self._state_for(cache, longer)
        # shares a 3-class prefix with ``longer`` but only 2 with
        # ``short`` — the probe must pick the strictly longer prefix
        churned = MCKPInstance(
            classes=longer.classes
            + (MCKPClass("c3", (MCKPItem(value=8.0, weight=2.0),)),),
            capacity=longer.capacity,
        )
        probed = cache.probe_delta(churned, resolution=100)
        assert probed is long_result.state
        assert cache.near_hits == 1

    def test_probe_miss_on_unrelated_instance(self):
        cache = SolverCache()
        self._state_for(cache, _instance())
        stranger = MCKPInstance(
            classes=(MCKPClass("z", (MCKPItem(value=1.0, weight=9.0),)),),
            capacity=3.0,
        )
        assert cache.probe_delta(stranger, resolution=100) is None
        assert cache.near_hits == 0

    def test_state_table_is_lru_bounded(self):
        cache = SolverCache(delta_maxstates=2)
        for capacity in (5.0, 6.0, 7.0):
            self._state_for(cache, _instance(capacity=capacity))
        assert cache.stats["delta_states"] == 2

    def test_zero_maxstates_disables_storage(self):
        cache = SolverCache(delta_maxstates=0)
        self._state_for(cache, _instance())
        assert cache.stats["delta_states"] == 0
        assert cache.probe_delta(_instance(), resolution=100) is None


class TestMetricsMirroring:
    def test_registry_always_agrees_with_stats(self):
        """The satellite contract: ``repro metrics`` sees exactly the
        numbers :attr:`SolverCache.stats` reports — including counts
        accumulated *before* binding (back-filled), exact hits and
        misses, near-hit probes, and the occupancy gauges."""
        from repro.observability.metrics import MetricsRegistry

        cache = SolverCache()
        cache.solve("dp", solve_dp, _instance())  # pre-bind miss

        registry = MetricsRegistry()
        cache.bind_metrics(registry)

        def assert_mirrored():
            stats = cache.stats
            for counter in ("hits", "misses", "near_hits"):
                assert registry.value(
                    f"solver_cache.{counter}"
                ) == stats[counter]
            assert registry.value("solver_cache.entries") == stats[
                "entries"
            ]
            assert registry.value("solver_cache.delta_states") == stats[
                "delta_states"
            ]

        assert_mirrored()  # back-filled pre-bind history
        cache.solve("dp", solve_dp, _instance())  # hit
        cache.solve("dp", solve_dp, _instance(capacity=7.0))  # miss
        result = solve_delta(_instance(), resolution=100)
        cache.store_state(
            cache.key_for("dp", _instance(), resolution=100),
            result.state,
        )
        cache.probe_delta(_instance(), resolution=100)  # near hit
        assert_mirrored()
        assert cache.stats["near_hits"] == 1
        cache.clear()
        assert_mirrored()

    def test_custom_prefix(self):
        from repro.observability.metrics import MetricsRegistry

        cache = SolverCache()
        registry = MetricsRegistry()
        cache.bind_metrics(registry, prefix="odm_cache")
        cache.solve("dp", solve_dp, _instance())
        assert registry.value("odm_cache.misses") == 1

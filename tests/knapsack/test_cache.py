"""Unit tests for the MCKP solver cache."""

import pytest

from repro.knapsack import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    SolverCache,
    canonical_instance_key,
    solve_dp,
)


def _instance(capacity=10.0, tags=("a", "b")):
    classes = (
        MCKPClass(
            "c0",
            (
                MCKPItem(value=1.0, weight=0.0, tag=tags[0]),
                MCKPItem(value=5.0, weight=4.0, tag=tags[1]),
            ),
        ),
        MCKPClass(
            "c1",
            (
                MCKPItem(value=2.0, weight=0.0),
                MCKPItem(value=9.0, weight=7.0),
            ),
        ),
    )
    return MCKPInstance(classes=classes, capacity=capacity)


def _infeasible():
    return MCKPInstance(
        classes=(MCKPClass("c0", (MCKPItem(value=1.0, weight=5.0),)),),
        capacity=1.0,
    )


def _counting(solver):
    calls = []

    def wrapped(instance, **kwargs):
        calls.append(instance)
        return solver(instance, **kwargs)

    return wrapped, calls


class TestCanonicalKey:
    def test_identical_structure_same_key(self):
        assert canonical_instance_key(_instance()) == canonical_instance_key(
            _instance()
        )

    def test_tags_do_not_affect_key(self):
        assert canonical_instance_key(
            _instance(tags=("a", "b"))
        ) == canonical_instance_key(_instance(tags=("x", "y")))

    def test_capacity_affects_key(self):
        assert canonical_instance_key(
            _instance(capacity=10.0)
        ) != canonical_instance_key(_instance(capacity=11.0))


class TestSolverCache:
    def test_miss_then_hit(self):
        cache = SolverCache()
        solver, calls = _counting(solve_dp)
        first = cache.solve("dp", solver, _instance(), resolution=100)
        second = cache.solve("dp", solver, _instance(), resolution=100)
        assert len(calls) == 1
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1}
        assert second.choices == first.choices
        assert second.total_value == first.total_value

    def test_hit_rebinds_to_callers_instance(self):
        """The cached choices come back bound to the *caller's* instance,
        so its tags (response times in the ODM) are honoured."""
        cache = SolverCache()
        cache.solve("dp", solve_dp, _instance(tags=(0.0, 0.1)))
        mine = _instance(tags=(0.0, 0.25))
        hit = cache.solve("dp", solve_dp, mine)
        assert hit.instance is mine
        assert hit.item_for("c0").tag in (0.0, 0.25)

    def test_kwargs_distinguish_entries(self):
        cache = SolverCache()
        solver, calls = _counting(solve_dp)
        cache.solve("dp", solver, _instance(), resolution=10)
        cache.solve("dp", solver, _instance(), resolution=20)
        assert len(calls) == 2
        assert cache.misses == 2

    def test_solver_name_distinguishes_entries(self):
        cache = SolverCache()
        solver, calls = _counting(solve_dp)
        cache.solve("dp", solver, _instance())
        cache.solve("other", solver, _instance())
        assert len(calls) == 2

    def test_infeasible_none_is_cached(self):
        cache = SolverCache()
        solver, calls = _counting(solve_dp)
        assert cache.solve("dp", solver, _infeasible()) is None
        assert cache.solve("dp", solver, _infeasible()) is None
        assert len(calls) == 1
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = SolverCache(maxsize=2)
        a, b, c = (
            _instance(capacity=5.0),
            _instance(capacity=6.0),
            _instance(capacity=7.0),
        )
        solver, calls = _counting(solve_dp)
        cache.solve("dp", solver, a)
        cache.solve("dp", solver, b)
        cache.solve("dp", solver, c)  # evicts a (oldest)
        assert len(cache) == 2
        cache.solve("dp", solver, b)  # still cached
        assert cache.hits == 1
        cache.solve("dp", solver, a)  # evicted: recomputed
        assert len(calls) == 4

    def test_clear(self):
        cache = SolverCache()
        cache.solve("dp", solve_dp, _instance())
        cache.clear()
        assert len(cache) == 0
        cache.solve("dp", solve_dp, _instance())
        assert cache.misses == 2

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            SolverCache(maxsize=0)

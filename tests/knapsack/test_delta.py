"""Metamorphic churn suite for the warm-start delta MCKP solver.

The defining contract: for ANY instance and ANY cached state,
``solve_delta(instance, state=state).selection`` is bit-for-bit
identical to ``solve_dp(instance)`` — same choices dict, same totals.
The Hypothesis suite walks random churn sequences (class add/remove/
modify, k = 0 up to full replacement, including the empty-instance and
zero-capacity degenerate cases) carrying the rolling ``DeltaState``
across steps, and checks the identity at every step.  Deterministic
tests pin the prefix-reuse mechanics (how *much* is warm-started) and
the state's picklability, which the sharded service path relies on.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knapsack import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    common_prefix,
    instance_class_keys,
    solve_delta,
    solve_dp,
)
from tests.conftest import (
    apply_churn_op,
    build_churned_instance,
    churn_ops,
    mckp_class_items,
)

RESOLUTION = 300


def assert_bit_identical(selection, baseline):
    if baseline is None:
        assert selection is None
        return
    assert selection is not None
    assert selection.choices == baseline.choices
    assert selection.total_value == baseline.total_value
    assert selection.total_weight == baseline.total_weight


def items(*pairs):
    return tuple(MCKPItem(value=v, weight=w) for v, w in pairs)


def fixed_instance(num_classes=4, capacity=20.0):
    """A deterministic all-feasible instance with one item per weight."""
    classes = tuple(
        MCKPClass(
            f"c{k}",
            items((float(k + 1), 1.0 + k), (float(2 * k + 3), 3.0 + k)),
        )
        for k in range(num_classes)
    )
    return MCKPInstance(classes=classes, capacity=capacity)


# ----------------------------------------------------------------------
# the metamorphic wall
# ----------------------------------------------------------------------
@given(
    initial=st.lists(mckp_class_items(), min_size=0, max_size=4),
    ops=st.lists(churn_ops(), min_size=0, max_size=6),
)
@settings(max_examples=60)
def test_delta_equals_scratch_along_any_churn_walk(initial, ops):
    """Rolling delta-solve == from-scratch solve at every churn step."""
    current = list(initial)
    state = None
    for step in range(len(ops) + 1):
        instance = build_churned_instance(current)
        scratch = solve_dp(instance, resolution=RESOLUTION)
        result = solve_delta(
            instance, resolution=RESOLUTION, state=state
        )
        assert_bit_identical(result.selection, scratch)
        assert 0 <= result.reused_layers <= instance.num_classes
        if result.state is not None:
            assert result.state.capacity == instance.capacity
            assert result.state.class_keys == instance_class_keys(
                instance
            )
            # degenerate shortcuts keep the previous state rolling
            state = result.state
        if step < len(ops):
            current = apply_churn_op(current, ops[step])


@given(
    initial=st.lists(mckp_class_items(), min_size=1, max_size=4),
    replacement=st.lists(mckp_class_items(), min_size=1, max_size=4),
)
@settings(max_examples=30)
def test_full_replacement_is_still_exact(initial, replacement):
    """k = everything: a state sharing no classes must not perturb."""
    first = solve_delta(
        build_churned_instance(initial), resolution=RESOLUTION
    )
    instance = build_churned_instance(replacement)
    result = solve_delta(
        instance, resolution=RESOLUTION, state=first.state
    )
    assert_bit_identical(
        result.selection, solve_dp(instance, resolution=RESOLUTION)
    )


# ----------------------------------------------------------------------
# degenerate cases
# ----------------------------------------------------------------------
class TestDegenerate:
    def test_empty_instance(self):
        instance = MCKPInstance(classes=(), capacity=20.0)
        result = solve_delta(instance, resolution=RESOLUTION)
        assert_bit_identical(
            result.selection, solve_dp(instance, resolution=RESOLUTION)
        )
        assert result.state is None
        assert result.reused_layers == 0

    def test_zero_capacity(self):
        instance = MCKPInstance(
            classes=(MCKPClass("c0", items((1.0, 0.0))),), capacity=0.0
        )
        result = solve_delta(instance, resolution=RESOLUTION)
        assert_bit_identical(
            result.selection, solve_dp(instance, resolution=RESOLUTION)
        )
        assert result.state is None

    def test_stale_state_survives_degenerate_step(self):
        """empty → non-empty with the pre-churn state still applied."""
        full = fixed_instance()
        state = solve_delta(full, resolution=RESOLUTION).state
        empty = MCKPInstance(classes=(), capacity=20.0)
        assert_bit_identical(
            solve_delta(
                empty, resolution=RESOLUTION, state=state
            ).selection,
            solve_dp(empty, resolution=RESOLUTION),
        )
        again = solve_delta(full, resolution=RESOLUTION, state=state)
        assert again.reused_layers == full.num_classes
        assert_bit_identical(
            again.selection, solve_dp(full, resolution=RESOLUTION)
        )

    def test_infeasible_class_keeps_reused_prefix_in_state(self):
        """An unfittable class → no selection; the DP never runs, so
        the returned state carries exactly the layers reused from the
        incoming state — still enough to warm-start the repair step."""
        feasible = fixed_instance(num_classes=3)
        pre = solve_delta(feasible, resolution=RESOLUTION)
        bad = MCKPInstance(
            classes=feasible.classes
            + (MCKPClass("c3", items((9.0, 999.0))),),
            capacity=feasible.capacity,
        )
        result = solve_delta(
            bad, resolution=RESOLUTION, state=pre.state
        )
        assert result.selection is None
        assert result.reused_layers == 3
        assert result.state is not None
        assert result.state.num_layers == 3
        fixed = solve_delta(
            feasible, resolution=RESOLUTION, state=result.state
        )
        assert fixed.reused_layers == 3
        assert_bit_identical(
            fixed.selection, solve_dp(feasible, resolution=RESOLUTION)
        )


# ----------------------------------------------------------------------
# prefix-reuse mechanics
# ----------------------------------------------------------------------
class TestPrefixReuse:
    def test_identical_instance_reuses_every_layer(self):
        instance = fixed_instance()
        first = solve_delta(instance, resolution=RESOLUTION)
        assert first.reused_layers == 0
        again = solve_delta(
            instance, resolution=RESOLUTION, state=first.state
        )
        assert again.reused_layers == instance.num_classes
        assert_bit_identical(again.selection, first.selection)

    def test_tail_modification_reuses_all_but_last(self):
        instance = fixed_instance()
        state = solve_delta(instance, resolution=RESOLUTION).state
        churned = MCKPInstance(
            classes=instance.classes[:-1]
            + (MCKPClass("c3", items((7.0, 2.0), (11.0, 5.0))),),
            capacity=instance.capacity,
        )
        result = solve_delta(
            churned, resolution=RESOLUTION, state=state
        )
        assert result.reused_layers == instance.num_classes - 1
        assert_bit_identical(
            result.selection, solve_dp(churned, resolution=RESOLUTION)
        )

    def test_renamed_class_ids_still_warm_start(self):
        """Ids are excluded from the prefix key; renames cost nothing."""
        instance = fixed_instance()
        state = solve_delta(instance, resolution=RESOLUTION).state
        renamed = MCKPInstance(
            classes=tuple(
                MCKPClass(f"renamed-{k}", cls.items)
                for k, cls in enumerate(instance.classes)
            ),
            capacity=instance.capacity,
        )
        result = solve_delta(
            renamed, resolution=RESOLUTION, state=state
        )
        assert result.reused_layers == renamed.num_classes
        assert result.selection is not None
        assert set(result.selection.choices) == {
            cls.class_id for cls in renamed.classes
        }

    def test_capacity_change_invalidates_state(self):
        instance = fixed_instance()
        state = solve_delta(instance, resolution=RESOLUTION).state
        resized = MCKPInstance(
            classes=instance.classes, capacity=instance.capacity * 2
        )
        assert (
            common_prefix(
                state,
                instance_class_keys(resized),
                resized.capacity,
                RESOLUTION,
            )
            == 0
        )
        result = solve_delta(
            resized, resolution=RESOLUTION, state=state
        )
        assert result.reused_layers == 0
        assert_bit_identical(
            result.selection, solve_dp(resized, resolution=RESOLUTION)
        )

    def test_resolution_change_invalidates_state(self):
        instance = fixed_instance()
        state = solve_delta(instance, resolution=RESOLUTION).state
        result = solve_delta(
            instance, resolution=2 * RESOLUTION, state=state
        )
        assert result.reused_layers == 0
        assert_bit_identical(
            result.selection,
            solve_dp(instance, resolution=2 * RESOLUTION),
        )


def test_state_round_trips_through_pickle():
    """The sharded service ships states across process boundaries."""
    instance = fixed_instance()
    state = solve_delta(instance, resolution=RESOLUTION).state
    revived = pickle.loads(pickle.dumps(state))
    churned = MCKPInstance(
        classes=instance.classes[:-1]
        + (MCKPClass("c3", items((5.0, 4.0))),),
        capacity=instance.capacity,
    )
    result = solve_delta(churned, resolution=RESOLUTION, state=revived)
    assert result.reused_layers == instance.num_classes - 1
    assert_bit_identical(
        result.selection, solve_dp(churned, resolution=RESOLUTION)
    )

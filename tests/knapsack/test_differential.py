"""Differential testing of the MCKP solver family.

Hundreds of seeded random instances, one oracle: ``solve_brute_force``
enumerates every selection, so on any instance small enough to
enumerate, ``solve_dp`` and ``solve_branch_bound`` must report the
*identical* optimal value, and the HEU-OE heuristic must stay feasible
and never exceed the optimum.

Instances use integer weights and an integer capacity with the DP
resolution pinned to the capacity (one capacity unit == one weight
unit), so the DP's capacity quantization is exact and "identical" means
identical — not "within quantization slack".
"""

import random

import pytest

from repro.knapsack import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    SolverCache,
    solve_branch_bound,
    solve_brute_force,
    solve_dp,
    solve_dp_reference,
    solve_heu_oe,
)
from repro.knapsack import dp as dp_module

#: 20 parametrized seeds x 10 instances each = 200 differential cases.
NUM_SEEDS = 20
INSTANCES_PER_SEED = 10
VALUE_TOL = 1e-9


def _random_instance(rng: random.Random) -> MCKPInstance:
    """A small integer-weight MCKP, occasionally infeasible on purpose."""
    num_classes = rng.randint(2, 5)
    capacity = rng.randint(4, 30)
    # ~1 in 6 instances gets weights big enough that nothing may fit.
    max_weight = (
        capacity + 4 if rng.random() < 1 / 6 else max(capacity // 2, 1)
    )
    classes = []
    for index in range(num_classes):
        items = tuple(
            MCKPItem(
                value=float(rng.randint(0, 50)),
                weight=float(rng.randint(0, max_weight)),
            )
            for _ in range(rng.randint(2, 4))
        )
        classes.append(MCKPClass(f"c{index}", items))
    return MCKPInstance(classes=tuple(classes), capacity=float(capacity))


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_exact_solvers_agree_and_heuristic_never_wins(seed):
    rng = random.Random(seed)
    for case in range(INSTANCES_PER_SEED):
        instance = _random_instance(rng)
        oracle = solve_brute_force(instance)
        # resolution == capacity -> one DP unit per weight unit: exact.
        dp = solve_dp(instance, resolution=int(instance.capacity))
        bb = solve_branch_bound(instance)
        heu = solve_heu_oe(instance)
        label = f"seed={seed} case={case} instance={instance!r}"

        if oracle is None:
            assert dp is None, f"dp found a selection on infeasible {label}"
            assert bb is None, f"b&b found a selection on infeasible {label}"
            assert heu is None, (
                f"heu_oe found a selection on infeasible {label}"
            )
            continue

        optimum = oracle.total_value
        assert oracle.is_feasible, label
        assert dp is not None and dp.is_feasible, label
        assert bb is not None and bb.is_feasible, label
        assert abs(dp.total_value - optimum) <= VALUE_TOL, (
            f"dp={dp.total_value} != optimum={optimum} on {label}"
        )
        assert abs(bb.total_value - optimum) <= VALUE_TOL, (
            f"b&b={bb.total_value} != optimum={optimum} on {label}"
        )
        # The greedy frontier heuristic must be sound (feasible) and
        # can never beat the true optimum.
        assert heu is not None and heu.is_feasible, label
        assert heu.total_value <= optimum + VALUE_TOL, (
            f"heu_oe={heu.total_value} > optimum={optimum} on {label}"
        )


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_optimized_dp_paths_match_reference(seed):
    """Sparse frontier, forced dense fallback, and the reference DP all
    report the identical optimum (or identical infeasibility) over the
    full corpus."""
    rng = random.Random(seed)
    for case in range(INSTANCES_PER_SEED):
        instance = _random_instance(rng)
        resolution = int(instance.capacity)
        reference = solve_dp_reference(instance, resolution=resolution)
        sparse = solve_dp(instance, resolution=resolution)
        saved = dp_module._SPARSE_CANDIDATE_FACTOR
        dp_module._SPARSE_CANDIDATE_FACTOR = 0  # every layer goes dense
        try:
            dense = solve_dp(instance, resolution=resolution)
        finally:
            dp_module._SPARSE_CANDIDATE_FACTOR = saved
        label = f"seed={seed} case={case} instance={instance!r}"

        if reference is None:
            assert sparse is None, f"sparse solved infeasible {label}"
            assert dense is None, f"dense solved infeasible {label}"
            continue
        assert sparse is not None and sparse.is_feasible, label
        assert dense is not None and dense.is_feasible, label
        assert abs(sparse.total_value - reference.total_value) <= VALUE_TOL, (
            f"sparse={sparse.total_value} != "
            f"reference={reference.total_value} on {label}"
        )
        assert abs(dense.total_value - reference.total_value) <= VALUE_TOL, (
            f"dense={dense.total_value} != "
            f"reference={reference.total_value} on {label}"
        )


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_solver_cache_hits_reproduce_selections(seed):
    """A cache hit returns a Selection identical to the original solve
    (same choices, value, weight), rebound to the caller's instance."""
    rng = random.Random(seed)
    cache = SolverCache()
    for case in range(INSTANCES_PER_SEED):
        instance = _random_instance(rng)
        resolution = int(instance.capacity)
        first = cache.solve(
            "dp", solve_dp, instance, resolution=resolution
        )
        misses = cache.misses
        second = cache.solve(
            "dp", solve_dp, instance, resolution=resolution
        )
        label = f"seed={seed} case={case}"
        assert cache.misses == misses, f"second solve missed on {label}"
        if first is None:
            assert second is None, label
            continue
        assert second is not None, label
        assert second.choices == first.choices, label
        assert second.total_value == first.total_value, label
        assert second.total_weight == first.total_weight, label
        assert second.instance is instance, label


def test_differential_corpus_size():
    """The corpus honours the >=200-instances contract of the issue."""
    assert NUM_SEEDS * INSTANCES_PER_SEED >= 200

"""Differential testing of the MCKP solver family.

Hundreds of seeded random instances, one oracle: ``solve_brute_force``
enumerates every selection, so on any instance small enough to
enumerate, ``solve_dp`` and ``solve_branch_bound`` must report the
*identical* optimal value, and the HEU-OE heuristic must stay feasible
and never exceed the optimum.

Instances use integer weights and an integer capacity with the DP
resolution pinned to the capacity (one capacity unit == one weight
unit), so the DP's capacity quantization is exact and "identical" means
identical — not "within quantization slack".
"""

import random

import pytest

from repro.knapsack import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    solve_branch_bound,
    solve_brute_force,
    solve_dp,
    solve_heu_oe,
)

#: 20 parametrized seeds x 10 instances each = 200 differential cases.
NUM_SEEDS = 20
INSTANCES_PER_SEED = 10
VALUE_TOL = 1e-9


def _random_instance(rng: random.Random) -> MCKPInstance:
    """A small integer-weight MCKP, occasionally infeasible on purpose."""
    num_classes = rng.randint(2, 5)
    capacity = rng.randint(4, 30)
    # ~1 in 6 instances gets weights big enough that nothing may fit.
    max_weight = (
        capacity + 4 if rng.random() < 1 / 6 else max(capacity // 2, 1)
    )
    classes = []
    for index in range(num_classes):
        items = tuple(
            MCKPItem(
                value=float(rng.randint(0, 50)),
                weight=float(rng.randint(0, max_weight)),
            )
            for _ in range(rng.randint(2, 4))
        )
        classes.append(MCKPClass(f"c{index}", items))
    return MCKPInstance(classes=tuple(classes), capacity=float(capacity))


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_exact_solvers_agree_and_heuristic_never_wins(seed):
    rng = random.Random(seed)
    for case in range(INSTANCES_PER_SEED):
        instance = _random_instance(rng)
        oracle = solve_brute_force(instance)
        # resolution == capacity -> one DP unit per weight unit: exact.
        dp = solve_dp(instance, resolution=int(instance.capacity))
        bb = solve_branch_bound(instance)
        heu = solve_heu_oe(instance)
        label = f"seed={seed} case={case} instance={instance!r}"

        if oracle is None:
            assert dp is None, f"dp found a selection on infeasible {label}"
            assert bb is None, f"b&b found a selection on infeasible {label}"
            assert heu is None, (
                f"heu_oe found a selection on infeasible {label}"
            )
            continue

        optimum = oracle.total_value
        assert oracle.is_feasible, label
        assert dp is not None and dp.is_feasible, label
        assert bb is not None and bb.is_feasible, label
        assert abs(dp.total_value - optimum) <= VALUE_TOL, (
            f"dp={dp.total_value} != optimum={optimum} on {label}"
        )
        assert abs(bb.total_value - optimum) <= VALUE_TOL, (
            f"b&b={bb.total_value} != optimum={optimum} on {label}"
        )
        # The greedy frontier heuristic must be sound (feasible) and
        # can never beat the true optimum.
        assert heu is not None and heu.is_feasible, label
        assert heu.total_value <= optimum + VALUE_TOL, (
            f"heu_oe={heu.total_value} > optimum={optimum} on {label}"
        )


def test_differential_corpus_size():
    """The corpus honours the >=200-instances contract of the issue."""
    assert NUM_SEEDS * INSTANCES_PER_SEED >= 200

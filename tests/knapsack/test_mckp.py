"""Unit + property tests for the MCKP instance model and preprocessing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knapsack.mckp import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    Selection,
    lp_efficient_frontier,
    prune_dominated,
)


def _instance(capacity=1.0):
    return MCKPInstance(
        classes=(
            MCKPClass("a", (MCKPItem(1.0, 0.2), MCKPItem(3.0, 0.5))),
            MCKPClass("b", (MCKPItem(0.0, 0.1), MCKPItem(2.0, 0.4))),
        ),
        capacity=capacity,
    )


class TestItem:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            MCKPItem(1.0, -0.1)

    def test_dominates(self):
        better = MCKPItem(2.0, 0.1)
        worse = MCKPItem(1.0, 0.2)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_items_do_not_dominate(self):
        a, b = MCKPItem(1.0, 0.1), MCKPItem(1.0, 0.1)
        assert not a.dominates(b)


class TestClassAndInstance:
    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            MCKPClass("x", ())

    def test_duplicate_class_ids_rejected(self):
        cls = MCKPClass("a", (MCKPItem(1.0, 0.1),))
        with pytest.raises(ValueError, match="duplicate"):
            MCKPInstance(classes=(cls, cls), capacity=1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MCKPInstance(classes=(), capacity=-1.0)

    def test_counts(self):
        inst = _instance()
        assert inst.num_classes == 2
        assert inst.num_items == 4

    def test_min_total_weight_and_feasibility(self):
        inst = _instance(capacity=0.25)
        assert inst.min_total_weight == pytest.approx(0.3)
        assert not inst.is_feasible()
        assert _instance(capacity=0.3).is_feasible()

    def test_lightest_item_prefers_higher_value_on_ties(self):
        cls = MCKPClass(
            "x", (MCKPItem(1.0, 0.2), MCKPItem(2.0, 0.2))
        )
        assert cls.lightest_item_index() == 1

    def test_class_by_id_missing(self):
        with pytest.raises(KeyError):
            _instance().class_by_id("zzz")


class TestSelection:
    def test_totals(self):
        inst = _instance()
        sel = Selection(inst, {"a": 1, "b": 0})
        assert sel.total_value == pytest.approx(3.0)
        assert sel.total_weight == pytest.approx(0.6)
        assert sel.is_feasible

    def test_missing_class_rejected(self):
        with pytest.raises(ValueError, match="misses"):
            Selection(_instance(), {"a": 0})

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Selection(_instance(), {"a": 5, "b": 0})

    def test_infeasible_detected(self):
        inst = _instance(capacity=0.5)
        sel = Selection(inst, {"a": 1, "b": 1})
        assert not sel.is_feasible

    def test_item_for(self):
        sel = Selection(_instance(), {"a": 1, "b": 0})
        assert sel.item_for("a").value == 3.0


class TestPruneDominated:
    def test_removes_strictly_worse(self):
        items = [MCKPItem(1.0, 0.2), MCKPItem(0.5, 0.3), MCKPItem(2.0, 0.4)]
        kept = prune_dominated(items)
        assert [i for i, _ in kept] == [0, 2]

    def test_keeps_best_of_equal_weights(self):
        items = [MCKPItem(1.0, 0.2), MCKPItem(3.0, 0.2)]
        kept = prune_dominated(items)
        assert [i for i, _ in kept] == [1]

    def test_sorted_by_weight(self):
        items = [MCKPItem(5.0, 0.9), MCKPItem(1.0, 0.1), MCKPItem(3.0, 0.5)]
        kept = prune_dominated(items)
        weights = [item.weight for _, item in kept]
        assert weights == sorted(weights)


class TestLpFrontier:
    def test_concave_chain_kept(self):
        items = [
            MCKPItem(0.0, 0.0),
            MCKPItem(4.0, 1.0),
            MCKPItem(6.0, 2.0),
            MCKPItem(7.0, 3.0),
        ]
        hull = lp_efficient_frontier(items)
        assert [i for i, _ in hull] == [0, 1, 2, 3]

    def test_lp_dominated_removed(self):
        items = [
            MCKPItem(0.0, 0.0),
            MCKPItem(1.0, 1.0),  # below the segment (0,0)-(4,2)
            MCKPItem(4.0, 2.0),
        ]
        hull = lp_efficient_frontier(items)
        assert [i for i, _ in hull] == [0, 2]


@st.composite
def item_lists(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    return [
        MCKPItem(
            value=draw(st.floats(min_value=0, max_value=100)),
            weight=draw(st.floats(min_value=0, max_value=10)),
        )
        for _ in range(n)
    ]


@given(item_lists())
@settings(max_examples=80)
def test_frontier_efficiencies_strictly_decrease(items):
    """The defining property the HEU-OE upgrade loop relies on."""
    hull = lp_efficient_frontier(items)
    slopes = []
    for (_, a), (_, b) in zip(hull, hull[1:]):
        assert b.weight > a.weight  # strictly increasing weights
        assert b.value >= a.value
        slopes.append((b.value - a.value) / (b.weight - a.weight))
    for s1, s2 in zip(slopes, slopes[1:]):
        assert s1 > s2 - 1e-9


@given(item_lists())
@settings(max_examples=80)
def test_no_kept_item_dominated(items):
    kept = prune_dominated(items)
    for _, a in kept:
        for item in items:
            assert not item.dominates(a)

"""Solver tests: each solver against the brute-force oracle.

DP and branch-and-bound must match the optimum (DP up to capacity
quantization); HEU-OE must be feasible and near-optimal.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.ablations import random_mckp
from repro.knapsack import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    solve_branch_bound,
    solve_brute_force,
    solve_dp,
    solve_heu_oe,
)

ALL_SOLVERS = {
    "dp": solve_dp,
    "heu_oe": solve_heu_oe,
    "branch_bound": solve_branch_bound,
    "brute_force": solve_brute_force,
}


def _small_instance():
    return MCKPInstance(
        classes=(
            MCKPClass("a", (MCKPItem(1.0, 0.1), MCKPItem(5.0, 0.6))),
            MCKPClass("b", (MCKPItem(0.0, 0.1), MCKPItem(4.0, 0.5))),
            MCKPClass("c", (MCKPItem(2.0, 0.2), MCKPItem(3.0, 0.3))),
        ),
        capacity=1.0,
    )


class TestKnownOptimum:
    """Hand-checkable instance: optimum is a@0 + b@1 + c@1 = 8, w=0.9."""

    @pytest.mark.parametrize("name", ["dp", "branch_bound", "brute_force"])
    def test_exact_solvers_find_optimum(self, name):
        selection = ALL_SOLVERS[name](_small_instance())
        assert selection is not None
        assert selection.total_value == pytest.approx(8.0)
        assert selection.is_feasible

    def test_heu_oe_is_feasible_and_good(self):
        selection = solve_heu_oe(_small_instance())
        assert selection is not None
        assert selection.is_feasible
        assert selection.total_value >= 7.0  # within one step of optimum


class TestEdgeCases:
    @pytest.mark.parametrize("name", list(ALL_SOLVERS))
    def test_empty_instance(self, name):
        instance = MCKPInstance(classes=(), capacity=1.0)
        selection = ALL_SOLVERS[name](instance)
        assert selection is not None
        assert selection.total_value == 0.0

    @pytest.mark.parametrize("name", list(ALL_SOLVERS))
    def test_infeasible_returns_none(self, name):
        instance = MCKPInstance(
            classes=(
                MCKPClass("a", (MCKPItem(1.0, 0.8),)),
                MCKPClass("b", (MCKPItem(1.0, 0.8),)),
            ),
            capacity=1.0,
        )
        assert ALL_SOLVERS[name](instance) is None

    @pytest.mark.parametrize("name", list(ALL_SOLVERS))
    def test_single_class_picks_best_fitting(self, name):
        instance = MCKPInstance(
            classes=(
                MCKPClass(
                    "a",
                    (
                        MCKPItem(1.0, 0.1),
                        MCKPItem(9.0, 0.9),
                        MCKPItem(10.0, 1.5),  # does not fit
                    ),
                ),
            ),
            capacity=1.0,
        )
        selection = ALL_SOLVERS[name](instance)
        assert selection.total_value == pytest.approx(9.0)

    def test_dp_zero_capacity_needs_zero_weights(self):
        instance = MCKPInstance(
            classes=(MCKPClass("a", (MCKPItem(2.0, 0.0),
                                     MCKPItem(5.0, 0.1))),),
            capacity=0.0,
        )
        selection = solve_dp(instance)
        assert selection.total_value == pytest.approx(2.0)

        infeasible = MCKPInstance(
            classes=(MCKPClass("a", (MCKPItem(2.0, 0.5),)),),
            capacity=0.0,
        )
        assert solve_dp(infeasible) is None

    def test_dp_resolution_must_be_positive(self):
        with pytest.raises(ValueError):
            solve_dp(_small_instance(), resolution=0)

    def test_brute_force_refuses_huge_instances(self):
        classes = tuple(
            MCKPClass(f"c{i}", tuple(MCKPItem(1.0, 0.01) for _ in range(10)))
            for i in range(10)
        )
        instance = MCKPInstance(classes=classes, capacity=1.0)
        with pytest.raises(ValueError, match="too large"):
            solve_brute_force(instance)


class TestAgainstOracle:
    """Randomized cross-validation against brute force."""

    @pytest.mark.parametrize("seed", range(12))
    def test_branch_bound_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        instance = random_mckp(rng, num_classes=5, items_per_class=4)
        exact = solve_brute_force(instance)
        bb = solve_branch_bound(instance)
        if exact is None:
            assert bb is None
        else:
            assert bb.total_value == pytest.approx(exact.total_value)

    @pytest.mark.parametrize("seed", range(12))
    def test_dp_matches_brute_force_within_quantization(self, seed):
        rng = np.random.default_rng(seed + 100)
        instance = random_mckp(rng, num_classes=5, items_per_class=4)
        exact = solve_brute_force(instance)
        dp = solve_dp(instance, resolution=50_000)
        if exact is None:
            assert dp is None
        else:
            assert dp is not None
            assert dp.is_feasible
            # quantization may only cost a sliver of value
            assert dp.total_value >= exact.total_value * 0.999 - 1e-9

    @pytest.mark.parametrize("seed", range(12))
    def test_heu_oe_feasible_and_near_optimal(self, seed):
        rng = np.random.default_rng(seed + 200)
        instance = random_mckp(rng, num_classes=6, items_per_class=5)
        exact = solve_brute_force(instance)
        heu = solve_heu_oe(instance)
        if exact is None:
            assert heu is None
            return
        assert heu is not None
        assert heu.is_feasible
        # no constant-factor guarantee exists for the MCKP greedy; 0.75
        # is comfortably below the worst case observed over hundreds of
        # random instances (~0.83) while still catching regressions
        assert heu.total_value >= 0.75 * exact.total_value - 1e-9

    def test_dp_exact_on_integral_weights(self):
        """When weights are exact multiples of the quantum the DP solves
        the instance exactly."""
        rng = np.random.default_rng(7)
        for _ in range(5):
            classes = []
            for i in range(4):
                items = tuple(
                    MCKPItem(
                        value=float(rng.integers(0, 50)),
                        weight=float(rng.integers(0, 30)) / 100.0,
                    )
                    for _ in range(3)
                )
                classes.append(MCKPClass(f"c{i}", items))
            instance = MCKPInstance(classes=tuple(classes), capacity=1.0)
            exact = solve_brute_force(instance)
            dp = solve_dp(instance, resolution=100)
            if exact is None:
                assert dp is None
            else:
                assert dp.total_value == pytest.approx(exact.total_value)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_solvers_agree_property(seed):
    """Exact solvers agree; the heuristic is feasible whenever they are."""
    rng = np.random.default_rng(seed)
    instance = random_mckp(rng, num_classes=4, items_per_class=3)
    exact = solve_brute_force(instance)
    bb = solve_branch_bound(instance)
    heu = solve_heu_oe(instance)
    if exact is None:
        assert bb is None and heu is None
        return
    assert bb.total_value == pytest.approx(exact.total_value)
    assert heu.is_feasible
    assert heu.total_value <= exact.total_value + 1e-9

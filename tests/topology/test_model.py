"""Unit tests for the declarative topology model."""

import numpy as np
import pytest

from repro.server.network import NetworkChannel
from repro.topology import (
    LINK_PRESETS,
    LINK_QUALITIES,
    LinkProfile,
    ServerNode,
    Topology,
    make_topology,
)


class TestLinkProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkProfile(name="x", bandwidth=0.0)
        with pytest.raises(ValueError):
            LinkProfile(name="x", bandwidth=1e6, base_latency=-0.1)
        with pytest.raises(ValueError):
            LinkProfile(name="x", bandwidth=1e6, loss_probability=1.5)

    def test_channel_instantiates_network_channel(self):
        channel = LINK_PRESETS["wifi"].channel(
            np.random.default_rng(0)
        )
        assert isinstance(channel, NetworkChannel)
        assert channel.transfer_time(1000.0) > 0

    def test_mean_delay_orders_the_presets(self):
        payload = 32_768.0
        delays = [
            LINK_PRESETS[name].mean_delay(payload)
            for name in LINK_QUALITIES
        ]
        # best-to-worst order: fiber < wifi < lossy
        assert delays == sorted(delays)
        assert delays[0] < delays[-1]

    def test_presets_cover_the_axis_values(self):
        assert set(LINK_PRESETS) == set(LINK_QUALITIES)
        # wifi reproduces the case study's ~20 Mbit/s wireless link
        assert LINK_PRESETS["wifi"].bandwidth == pytest.approx(2.5e6)


class TestServerNode:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerNode(server_id="")
        with pytest.raises(ValueError):
            ServerNode(server_id="s", speed=0.0)
        with pytest.raises(ValueError):
            ServerNode(server_id="s", response_bound=0.0)

    def test_defaults(self):
        node = ServerNode(server_id="s")
        assert node.speed == 1.0
        assert node.link is LINK_PRESETS["wifi"]
        assert node.response_bound is None


class TestTopology:
    def test_needs_servers_and_unique_ids(self):
        with pytest.raises(ValueError):
            Topology(servers=())
        with pytest.raises(ValueError, match="duplicate"):
            Topology(
                servers=(
                    ServerNode(server_id="s"),
                    ServerNode(server_id="s"),
                )
            )

    def test_iteration_order_and_lookup(self):
        topo = make_topology(3)
        assert topo.server_ids == ("s0", "s1", "s2")
        assert [s.server_id for s in topo] == ["s0", "s1", "s2"]
        assert len(topo) == 3
        assert topo.get("s1").server_id == "s1"
        with pytest.raises(KeyError):
            topo.get("mars")

    def test_relabeled_preserves_order_and_unmapped_ids(self):
        topo = make_topology(3)
        renamed = topo.relabeled({"s0": "alpha", "s2": "gamma"})
        assert renamed.server_ids == ("alpha", "s1", "gamma")
        # everything but the id is untouched
        for before, after in zip(topo, renamed):
            assert after.speed == before.speed
            assert after.link is before.link
            assert after.kind == before.kind


class TestMakeTopology:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_topology(0)
        with pytest.raises(ValueError):
            make_topology(2, spread=-1.0)
        with pytest.raises(ValueError, match="link_quality"):
            make_topology(2, link_quality="carrier-pigeon")

    def test_spread_makes_the_last_server_fastest(self):
        topo = make_topology(4, spread=1.0)
        speeds = [s.speed for s in topo]
        assert speeds == sorted(speeds)
        assert speeds[0] == pytest.approx(1.0)
        assert speeds[-1] == pytest.approx(2.0)

    def test_zero_spread_and_single_server_are_homogeneous(self):
        assert all(s.speed == 1.0 for s in make_topology(3))
        assert make_topology(1, spread=5.0).servers[0].speed == 1.0

    def test_kinds_cycle(self):
        topo = make_topology(5)
        assert [s.kind for s in topo] == [
            "edge", "cloud", "peer", "edge", "cloud",
        ]

    def test_guaranteed_bound_lands_on_cloud_nodes_only(self):
        topo = make_topology(6, guaranteed_bound=0.25)
        for server in topo:
            if server.kind == "cloud":
                assert server.response_bound == 0.25
            else:
                assert server.response_bound is None

    def test_link_quality_is_shared(self):
        topo = make_topology(3, link_quality="lossy")
        assert all(
            s.link is LINK_PRESETS["lossy"] for s in topo
        )

"""Unit tests for :class:`TopologyDecisionManager` and routed decisions."""

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.knapsack import SolverCache
from repro.runtime.health import CircuitBreaker
from repro.topology import RoutedDecision, TopologyDecisionManager


def _task(task_id="m", wcet=0.2, period=1.0, **kwargs):
    defaults = dict(
        setup_time=0.02,
        compensation_time=wcet,
        post_time=0.005,
        benefit=BenefitFunction([BenefitPoint(0.0, 1.0)]),
    )
    defaults.update(kwargs)
    return OffloadableTask(
        task_id=task_id, wcet=wcet, period=period, **defaults
    )


def _fn(pairs, local=1.0):
    return BenefitFunction(
        [BenefitPoint(0.0, local)]
        + [BenefitPoint(r, v) for r, v in pairs]
    )


def _benefits():
    return {
        "edge": {"m": _fn([(0.1, 8.0)])},
        "cloud": {"m": _fn([(0.4, 5.0)])},
    }


class TestConstruction:
    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            TopologyDecisionManager("nope")

    def test_cache_spellings(self):
        assert TopologyDecisionManager("dp").cache is None
        assert TopologyDecisionManager("dp", cache=False).cache is None
        assert isinstance(
            TopologyDecisionManager("dp", cache=True).cache, SolverCache
        )
        # an explicitly passed (empty, hence falsy) cache is used as-is
        cache = SolverCache()
        assert TopologyDecisionManager("dp", cache=cache).cache is cache

    def test_breaker_factory_honoured(self):
        manager = TopologyDecisionManager(
            "dp",
            breaker_factory=lambda: CircuitBreaker(min_samples=1),
        )
        assert manager.breaker("s").min_samples == 1
        # created once, then reused
        assert manager.breaker("s") is manager.breaker("s")

    def test_cache_stats(self):
        assert TopologyDecisionManager("dp").cache_stats() is None
        manager = TopologyDecisionManager(
            "dp", cache=True, resolution=500
        )
        manager.decide(TaskSet([_task()]), _benefits())
        stats = manager.cache_stats()
        assert set(stats) == {
            "hits", "misses", "near_hits", "hits_local",
            "hits_replicated", "replicated_in",
            "replicated_states_in", "entries", "delta_states",
        }
        assert stats["misses"] == 1


class TestDecide:
    def test_routes_to_the_best_server(self):
        decision = TopologyDecisionManager(
            "dp", resolution=1_000
        ).decide(TaskSet([_task()]), _benefits())
        assert isinstance(decision, RoutedDecision)
        assert decision.server_of("m") == "edge"
        assert decision.response_times["m"] == pytest.approx(0.1)
        assert decision.routes == {"m": "edge"}
        assert decision.pruned_servers == ()
        assert not decision.degraded
        assert decision.schedulability.feasible

    def test_plain_tasks_stay_local(self):
        tasks = TaskSet([_task(), Task("plain", 0.1, 1.0)])
        decision = TopologyDecisionManager(
            "dp", resolution=1_000
        ).decide(tasks, _benefits())
        assert decision.placements["plain"] == (None, 0.0)

    def test_server_bound_unlocks_guaranteed_offload(self):
        """A point only feasible under the chosen server's §3 bound:
        compensation cannot fit the slack, post-processing can."""
        task = _task(compensation_time=0.9, wcet=0.2)
        benefits = {"cloud": {"m": _fn([(0.5, 9.0)])}}
        manager = TopologyDecisionManager("dp", resolution=1_000)
        # without the bound the offload point is structurally
        # infeasible (0.02 + 0.9 > 0.5 slack): the task stays local
        unbounded = manager.decide(TaskSet([task]), benefits)
        assert unbounded.placements["m"] == (None, 0.0)
        # with the cloud guaranteeing r=0.5, the second phase budgets
        # post_time and the offload becomes feasible and optimal
        bounded = manager.decide(
            TaskSet([task]), benefits, {"cloud": {"m": 0.5}}
        )
        assert bounded.server_of("m") == "cloud"
        assert bounded.expected_benefit == pytest.approx(9.0)
        assert bounded.total_demand_rate == pytest.approx(
            (0.02 + 0.005) / 0.5
        )
        assert bounded.schedulability.feasible

    def test_open_breaker_prunes_the_server(self):
        manager = TopologyDecisionManager("dp", resolution=1_000)
        breaker = manager.breaker("edge")
        breaker.record_window(0, 0, breaker.min_samples)
        decision = manager.decide(TaskSet([_task()]), _benefits())
        assert decision.pruned_servers == ("edge",)
        assert decision.server_of("m") == "cloud"

    def test_record_window_creates_breakers_for_new_servers(self):
        manager = TopologyDecisionManager("dp")
        assert manager.breakers == {}
        states = manager.record_window(0, {"edge": (3, 0)})
        assert states == {"edge": "closed"}
        assert "edge" in manager.breakers
        assert manager.open_servers == ()

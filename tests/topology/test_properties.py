"""Hypothesis properties of the routed choice-group expansion.

Three invariants of :func:`repro.core.odm.build_mckp` topology mode:

* **per-class min-weight existence** — every class keeps exactly one
  local item with the Theorem 3 local density, every offload item's
  weight is the per-server §3 demand rate, and (because the strategy
  bounds local utilization below 1) the instance is always feasible
  within the budget;
* **relabel invariance** — renaming the servers changes only the item
  tags: the canonical fingerprint is unchanged and the DP returns the
  identical selection, with tags corresponding through the renaming;
* **pruning is a per-class item subset** — restricting the allowed
  servers never removes a class, never invents an item, and never
  increases the optimum; pruning every server leaves exactly the
  local-only reduction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.odm import build_mckp
from repro.core.task import OffloadableTask, TaskSet
from repro.knapsack import canonical_instance_key, solve_dp
from repro.topology.routing import _routed_demand_rate

RESOLUTION = 1_000
#: Candidate offload response times (deadline = 1.0 in the strategy).
GRID = (0.15, 0.3, 0.45, 0.6, 0.75, 0.9)


@st.composite
def benefit_functions(draw, local: float) -> BenefitFunction:
    fracs = sorted(draw(st.sets(st.sampled_from(GRID), max_size=3)))
    value = local
    points = [BenefitPoint(0.0, float(local))]
    for frac in fracs:
        value += draw(st.integers(min_value=1, max_value=8))
        points.append(BenefitPoint(frac, float(value)))
    return BenefitFunction(points)


@st.composite
def federations(draw):
    """Up to 3 unit-period tasks x up to 3 servers, with optional
    per-server §3 bounds.  Local utilization stays <= 0.9, so the
    all-local configuration — and therefore the instance — is always
    feasible."""
    num_tasks = draw(st.integers(min_value=1, max_value=3))
    tasks = TaskSet()
    for i in range(num_tasks):
        wcet = draw(st.integers(min_value=1, max_value=6)) / 20.0
        local = float(draw(st.integers(min_value=0, max_value=3)))
        tasks.add(
            OffloadableTask(
                task_id=f"t{i}",
                wcet=wcet,
                period=1.0,
                setup_time=0.02,
                compensation_time=wcet,
                post_time=0.005,
                benefit=draw(benefit_functions(local)),
            )
        )
    topology = {}
    bounds = {}
    for s in range(draw(st.integers(min_value=1, max_value=3))):
        per_task = {}
        per_bounds = {}
        for task in tasks:
            if not draw(st.booleans()):
                continue
            per_task[task.task_id] = draw(
                benefit_functions(task.benefit.local_benefit)
            )
            if draw(st.booleans()):
                per_bounds[task.task_id] = draw(
                    st.sampled_from((0.3, 0.6))
                )
        topology[f"s{s}"] = per_task
        if per_bounds:
            bounds[f"s{s}"] = per_bounds
    return tasks, topology, (bounds or None)


@settings(max_examples=60)
@given(federations())
def test_choice_groups_preserve_theorem3_weights(case):
    """Min-weight existence + per-item Theorem 3 consistency."""
    tasks, topology, bounds = case
    instance = build_mckp(tasks, topology=topology, server_bounds=bounds)
    by_id = {task.task_id: task for task in tasks}
    assert len(instance.classes) == len(tasks)
    for cls in instance.classes:
        task = by_id[cls.class_id]
        local_items = [i for i in cls.items if i.tag == (None, 0.0)]
        assert len(local_items) == 1
        assert local_items[0].weight == task.wcet / min(
            task.period, task.deadline
        )
        for item in cls.items:
            if item.tag == (None, 0.0):
                continue
            server_id, r = item.tag
            bound = task.server_response_bound
            if bounds is not None:
                bound = bounds.get(server_id, {}).get(
                    task.task_id, bound
                )
            assert item.weight == _routed_demand_rate(
                task, topology[server_id][task.task_id], r, bound
            )
    # the strategy caps local utilization at 0.9, so the all-local
    # selection always exists and the optimum respects the budget
    assert sum(
        min(i.weight for i in cls.items) for cls in instance.classes
    ) <= 1.0 + 1e-9
    selection = solve_dp(instance, resolution=RESOLUTION)
    assert selection is not None
    assert selection.total_weight <= 1.0 + 1e-9


@settings(max_examples=60)
@given(federations(), st.permutations(range(3)))
def test_relabeling_servers_preserves_fingerprint_and_selection(
    case, perm
):
    tasks, topology, bounds = case
    mapping = {
        sid: f"node-{perm[i % 3]}-{i}"
        for i, sid in enumerate(topology)
    }
    relabeled = {
        mapping[sid]: fns for sid, fns in topology.items()
    }
    rebounds = (
        None
        if bounds is None
        else {mapping[sid]: b for sid, b in bounds.items()}
    )
    original = build_mckp(
        tasks, topology=topology, server_bounds=bounds
    )
    renamed = build_mckp(
        tasks, topology=relabeled, server_bounds=rebounds
    )
    # tags are excluded from the canonical key, so renaming servers
    # cannot change the fingerprint — the cache-identity trick
    assert canonical_instance_key(original) == canonical_instance_key(
        renamed
    )
    sel_a = solve_dp(original, resolution=RESOLUTION)
    sel_b = solve_dp(renamed, resolution=RESOLUTION)
    assert sel_a is not None and sel_b is not None
    assert sel_a.choices == sel_b.choices
    assert sel_a.total_value == sel_b.total_value
    assert sel_a.total_weight == sel_b.total_weight
    for cls in original.classes:
        tag_a = sel_a.item_for(cls.class_id).tag
        tag_b = sel_b.item_for(cls.class_id).tag
        if tag_a == (None, 0.0):
            assert tag_b == (None, 0.0)
        else:
            assert tag_b == (mapping[tag_a[0]], tag_a[1])


@settings(max_examples=60)
@given(
    federations(),
    st.sets(st.sampled_from(("s0", "s1", "s2"))),
)
def test_pruning_is_item_subset_and_never_gains(case, pruned):
    tasks, topology, bounds = case
    pruned = {sid for sid in pruned if sid in topology}
    allowed = set(topology) - pruned
    full = build_mckp(tasks, topology=topology, server_bounds=bounds)
    restricted = build_mckp(
        tasks,
        topology=topology,
        allowed_servers=allowed,
        server_bounds=bounds,
    )
    for cls_full, cls_cut in zip(full.classes, restricted.classes):
        assert cls_full.class_id == cls_cut.class_id
        full_items = {
            (i.value, i.weight, i.tag) for i in cls_full.items
        }
        for item in cls_cut.items:
            assert (item.value, item.weight, item.tag) in full_items
            assert (
                item.tag == (None, 0.0) or item.tag[0] in allowed
            )
    sel_full = solve_dp(full, resolution=RESOLUTION)
    sel_cut = solve_dp(restricted, resolution=RESOLUTION)
    assert sel_full is not None and sel_cut is not None
    assert sel_cut.total_value <= sel_full.total_value + 1e-9
    if not allowed:
        # every server pruned -> exactly the local-only reduction
        assert all(len(cls.items) == 1 for cls in restricted.classes)
        assert all(
            sel_cut.item_for(cls.class_id).tag == (None, 0.0)
            for cls in restricted.classes
        )

"""Metamorphic degradation tests for the routed decision manager.

Killing a server (tripping its breaker) must never increase the routed
optimum and must never route a task to the dead server — even when the
dead server was the *only* one offering the task (it falls back local).
Recovering the breaker (open → half_open → closed) on an unchanged
instance must restore the original decision bit-for-bit, served from
the solver cache.
"""

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, TaskSet
from repro.knapsack import SolverCache
from repro.topology import TopologyDecisionManager


def _task(task_id, wcet=0.15, period=1.0):
    return OffloadableTask(
        task_id=task_id,
        wcet=wcet,
        period=period,
        setup_time=0.02,
        compensation_time=wcet,
        post_time=0.005,
        benefit=BenefitFunction([BenefitPoint(0.0, 1.0)]),
    )


def _fn(pairs):
    return BenefitFunction(
        [BenefitPoint(0.0, 1.0)]
        + [BenefitPoint(r, v) for r, v in pairs]
    )


@pytest.fixture
def tasks():
    return TaskSet([_task("a"), _task("b"), _task("c")])


@pytest.fixture
def benefits():
    """edge dominates for a and b; cloud offers a fallback for a and b
    and is the only server carrying c."""
    return {
        "edge": {
            "a": _fn([(0.1, 8.0)]),
            "b": _fn([(0.1, 6.0)]),
        },
        "cloud": {
            "a": _fn([(0.4, 5.0)]),
            "b": _fn([(0.4, 4.0)]),
            "c": _fn([(0.4, 5.0)]),
        },
    }


def _trip(manager, server_id):
    breaker = manager.breaker(server_id)
    manager.record_window(0, {server_id: (0, breaker.min_samples)})
    assert breaker.state == "open"


class TestKill:
    def test_killing_a_server_reroutes_and_never_gains(
        self, tasks, benefits
    ):
        manager = TopologyDecisionManager("dp", resolution=1_000)
        baseline = manager.decide(tasks, benefits)
        assert baseline.server_of("a") == "edge"
        assert not baseline.degraded

        _trip(manager, "edge")
        degraded = manager.decide(tasks, benefits)
        assert degraded.pruned_servers == ("edge",)
        assert degraded.degraded
        assert all(
            server != "edge"
            for server, r in degraded.placements.values()
            if r > 0
        )
        # a and b fall back to the slower cloud, not to local
        assert degraded.server_of("a") == "cloud"
        assert degraded.server_of("b") == "cloud"
        assert (
            degraded.expected_benefit
            <= baseline.expected_benefit + 1e-9
        )

    def test_task_of_a_dead_only_server_goes_local(
        self, tasks, benefits
    ):
        manager = TopologyDecisionManager("dp", resolution=1_000)
        baseline = manager.decide(tasks, benefits)
        assert baseline.server_of("c") == "cloud"

        _trip(manager, "cloud")
        degraded = manager.decide(tasks, benefits)
        # cloud was the only server offering c — it must not be
        # admitted anywhere, it runs locally
        assert degraded.placements["c"] == (None, 0.0)

    def test_all_servers_dead_is_the_local_only_reduction(
        self, tasks, benefits
    ):
        manager = TopologyDecisionManager("dp", resolution=1_000)
        # one window that fails both servers at once (tripping them in
        # separate windows would tick the first breaker's cooldown)
        n = manager.breaker("edge").min_samples
        states = manager.record_window(
            0, {"edge": (0, n), "cloud": (0, n)}
        )
        assert states == {"edge": "open", "cloud": "open"}
        decision = manager.decide(tasks, benefits)
        assert set(decision.pruned_servers) == {"edge", "cloud"}
        assert all(
            placement == (None, 0.0)
            for placement in decision.placements.values()
        )
        # all-local benefit: every task at its G_i(0) = 1.0
        assert decision.expected_benefit == pytest.approx(3.0)
        assert decision.schedulability.feasible


class TestRecovery:
    def test_recovery_restores_the_decision_bit_for_bit(
        self, tasks, benefits
    ):
        manager = TopologyDecisionManager(
            "dp", cache=SolverCache(), resolution=1_000
        )
        baseline = manager.decide(tasks, benefits)
        breaker = manager.breaker("edge")
        _trip(manager, "edge")
        degraded = manager.decide(tasks, benefits)
        assert degraded.placements != baseline.placements

        # open -> half_open after the cooldown window, then a clean
        # probe window closes the breaker again
        manager.record_window(1, {})
        assert breaker.state == "half_open"
        assert "edge" not in manager.open_servers
        manager.record_window(2, {"edge": (breaker.min_samples, 0)})
        assert breaker.state == "closed"

        hits_before = manager.cache.hits
        recovered = manager.decide(tasks, benefits)
        assert recovered.placements == baseline.placements
        assert (
            recovered.expected_benefit == baseline.expected_benefit
        )
        assert (
            recovered.total_demand_rate
            == baseline.total_demand_rate
        )
        assert recovered.pruned_servers == ()
        # the unchanged instance was served from the solver cache
        assert manager.cache.hits > hits_before

    def test_half_open_probe_is_not_pruned(self, tasks, benefits):
        manager = TopologyDecisionManager("dp", resolution=1_000)
        _trip(manager, "edge")
        manager.record_window(1, {})
        decision = manager.decide(tasks, benefits)
        # half_open allows probing: edge routes again
        assert decision.pruned_servers == ()
        assert decision.server_of("a") == "edge"

    def test_record_window_reports_states(self, tasks, benefits):
        manager = TopologyDecisionManager("dp")
        breaker = manager.breaker("edge")
        states = manager.record_window(
            0,
            {"edge": (0, breaker.min_samples), "cloud": (3, 0)},
        )
        assert states == {"edge": "open", "cloud": "closed"}
        assert manager.open_servers == ("edge",)
        # absent servers still tick: the open breaker cools down
        states = manager.record_window(1, {})
        assert states["edge"] == "half_open"

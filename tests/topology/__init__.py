"""Tests for the multi-server topology layer (routed MCKP)."""

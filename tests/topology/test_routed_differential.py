"""Differential wall for the topology-routed MCKP.

Hundreds of seeded random federations, two oracles:

* ``solve_brute_force`` enumerates every server×level assignment on a
  DP-grid-quantized copy of the routed instance (the corpus is built so
  the enumeration always stays tractable), so the topology-mode
  ``solve_dp`` must report the identical optimal value — and agree on
  infeasibility — on *every* instance, with ``solve_dp_reference``
  pinned alongside;
* with exactly one server whose benefit functions equal the tasks' own,
  the topology instance must share the plain single-server reduction's
  canonical fingerprint and the DP must return the *identical*
  selection — same choices, same value, same weight, bit for bit.
"""

import random

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.odm import build_mckp
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.knapsack import (
    canonical_instance_key,
    solve_brute_force,
    solve_dp,
    solve_dp_reference,
)
from repro.scenarios.campaign import _quantized_copy

#: 20 parametrized seeds x 10 federations each = 200 differential cases
#: per test (the corpus-size contract of the issue).
NUM_SEEDS = 20
INSTANCES_PER_SEED = 10
#: One DP unit = 1/400 of the Theorem 3 budget; the brute-force oracle
#: runs on the quantized copy so it explores exactly the DP's feasible
#: region.
RESOLUTION = 400
VALUE_TOL = 1e-9

#: Candidate response times as deadline fractions.  The 1.05 entry is
#: structurally infeasible on purpose (r >= D_i) and must be filtered.
_FRACS = (0.15, 0.3, 0.45, 0.6, 0.75, 0.9, 1.05)


def _random_benefit(
    rng: random.Random, deadline: float, local: float
) -> BenefitFunction:
    """A random non-decreasing benefit function anchored at ``local``."""
    value = local
    points = [BenefitPoint(0.0, float(local))]
    for frac in sorted(rng.sample(_FRACS, rng.randint(0, 3))):
        value += rng.randint(1, 10)
        points.append(BenefitPoint(deadline * frac, float(value)))
    return BenefitFunction(points)


def _random_task(rng: random.Random, index: int) -> Task:
    """A random task; ~1 in 5 is plain (never offloadable)."""
    period = rng.choice((0.5, 1.0, 2.0))
    wcet = period * rng.uniform(0.05, 0.35)
    if rng.random() < 0.2:
        return Task(f"t{index}", wcet, period)
    return OffloadableTask(
        task_id=f"t{index}",
        wcet=wcet,
        period=period,
        setup_time=period * rng.uniform(0.01, 0.05),
        compensation_time=wcet * rng.uniform(0.4, 1.0),
        post_time=period * rng.uniform(0.001, 0.005),
        benefit=_random_benefit(rng, period, float(rng.randint(0, 3))),
        server_response_bound=(
            period * 0.5 if rng.random() < 0.3 else None
        ),
    )


def _random_federation(rng: random.Random):
    """Random tasks + per-server benefit functions + optional bounds.

    Servers cover a random subset of the offloadable tasks; ~1 in 3
    (server, task) pairs additionally advertises a per-server §3 bound
    so the guaranteed-result branch is exercised throughout the corpus.
    """
    tasks = TaskSet(
        [_random_task(rng, i) for i in range(rng.randint(2, 4))]
    )
    topology = {}
    bounds = {}
    for s in range(rng.randint(1, 3)):
        per_task = {}
        per_bounds = {}
        for task in tasks:
            if not isinstance(task, OffloadableTask):
                continue
            if rng.random() < 0.2:
                continue  # this server does not offer the task
            per_task[task.task_id] = _random_benefit(
                rng, task.deadline, task.benefit.local_benefit
            )
            if rng.random() < 0.3:
                per_bounds[task.task_id] = (
                    task.deadline * rng.choice((0.3, 0.6))
                )
        topology[f"s{s}"] = per_task
        if per_bounds:
            bounds[f"s{s}"] = per_bounds
    return tasks, topology, (bounds or None)


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_routed_dp_matches_brute_force_and_reference(seed):
    rng = random.Random(seed)
    for case in range(INSTANCES_PER_SEED):
        tasks, topology, bounds = _random_federation(rng)
        instance = build_mckp(
            tasks, topology=topology, server_bounds=bounds
        )
        label = f"seed={seed} case={case}"

        # structural sanity: one class per task, local item first, every
        # offload tag routed to a real server
        assert len(instance.classes) == len(tasks), label
        for cls in instance.classes:
            assert cls.items[0].tag == (None, 0.0), label
            for item in cls.items[1:]:
                server_id, r = item.tag
                assert server_id in topology, label
                assert r > 0 and item.weight > 0, label

        dp = solve_dp(instance, resolution=RESOLUTION)
        reference = solve_dp_reference(instance, resolution=RESOLUTION)
        # the corpus keeps classes/items small enough to enumerate
        enumeration = 1
        for cls in instance.classes:
            enumeration *= len(cls.items)
        assert 0 < enumeration <= 20_000, label
        exact = solve_brute_force(_quantized_copy(instance, RESOLUTION))

        if dp is None:
            assert reference is None, (
                f"reference solved dp-infeasible {label}"
            )
            assert exact is None, (
                f"brute force solved dp-infeasible {label}"
            )
            continue
        assert dp.is_feasible, label
        assert reference is not None, label
        assert exact is not None, label
        assert abs(dp.total_value - reference.total_value) <= VALUE_TOL, (
            f"dp={dp.total_value} != reference="
            f"{reference.total_value} on {label}"
        )
        assert abs(dp.total_value - exact.total_value) <= VALUE_TOL, (
            f"dp={dp.total_value} != brute={exact.total_value} on {label}"
        )


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_single_server_topology_is_bit_identical_to_plain(seed):
    """One server whose functions equal the tasks' own: same canonical
    fingerprint as the plain reduction, identical DP selection."""
    rng = random.Random(1000 + seed)
    for case in range(INSTANCES_PER_SEED):
        tasks = TaskSet(
            [_random_task(rng, i) for i in range(rng.randint(2, 4))]
        )
        per_task = {
            task.task_id: task.benefit
            for task in tasks
            if isinstance(task, OffloadableTask)
        }
        topo_instance = build_mckp(tasks, topology={"only": per_task})
        plain = build_mckp(tasks)
        label = f"seed={seed} case={case}"

        assert canonical_instance_key(plain) == canonical_instance_key(
            topo_instance
        ), f"fingerprints diverge on {label}"

        dp_topo = solve_dp(topo_instance, resolution=RESOLUTION)
        dp_plain = solve_dp(plain, resolution=RESOLUTION)
        if dp_plain is None:
            assert dp_topo is None, label
            continue
        assert dp_topo is not None, label
        # bit-identical, not approximately equal: the DP ran the same
        # instruction stream over the same floats
        assert dp_topo.choices == dp_plain.choices, label
        assert dp_topo.total_value == dp_plain.total_value, label
        assert dp_topo.total_weight == dp_plain.total_weight, label
        # tags differ only in spelling: (server, r) vs bare r
        for cls in plain.classes:
            topo_tag = dp_topo.item_for(cls.class_id).tag
            plain_tag = dp_plain.item_for(cls.class_id).tag
            if plain_tag == 0.0:
                assert topo_tag == (None, 0.0), label
            else:
                assert topo_tag == ("only", plain_tag), label


def test_differential_corpus_size():
    """The corpus honours the >=200-instances contract of the issue."""
    assert NUM_SEEDS * INSTANCES_PER_SEED >= 200

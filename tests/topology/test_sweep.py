"""Topology sweep driver: smoke run, audits, determinism, schema."""

import json

import pytest

from repro.experiments import (
    TopologySweepConfig,
    TopologySweepReport,
    run_topology_sweep,
)
from repro.scenarios import topology_matrix, topology_smoke_matrix

_CONFIG = TopologySweepConfig(seed=7, num_samples=16, resolution=400)


@pytest.fixture(scope="module")
def smoke_report():
    return run_topology_sweep(config=_CONFIG, workers=1, smoke=True)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TopologySweepConfig(replications=0)
        with pytest.raises(ValueError):
            TopologySweepConfig(resolution=0)
        with pytest.raises(ValueError):
            TopologySweepConfig(num_samples=0)
        with pytest.raises(ValueError):
            TopologySweepConfig(brute_limit=-1)


class TestMatrices:
    def test_shapes(self):
        assert topology_matrix().num_cells == 24
        assert topology_smoke_matrix().num_cells == 6
        assert topology_matrix().axis_names() == (
            "servers", "heterogeneity", "link",
        )


class TestSmokeSweep:
    def test_runs_clean(self, smoke_report):
        assert smoke_report.instances == 6
        assert smoke_report.cells == 6
        assert smoke_report.ok
        assert smoke_report.audit["anomaly_count"] == 0
        assert smoke_report.audit["anomalies"] == []

    def test_audit_actually_audited(self, smoke_report):
        audit = smoke_report.audit
        assert audit["reference_checks"] == 6
        # the two n1 cells run the single-server bit-identity check
        assert audit["single_server_checks"] == 2
        # every instance that offloads anywhere runs the prune and the
        # recovery legs, and they always run together
        assert audit["prune_checks"] > 0
        assert audit["recovery_checks"] == audit["prune_checks"]
        # one restriction per server per instance: (1+2+4) x 2 links
        assert audit["federation_checks"] == 14
        assert audit["brute_checks"] > 0

    def test_marginals_cover_every_axis_point(self, smoke_report):
        matrix = topology_smoke_matrix()
        assert smoke_report.axis_names == matrix.axis_names()
        for axis in matrix.axes:
            per = smoke_report.marginals[axis.name]
            assert set(per) == set(axis.labels())
            assert sum(m["instances"] for m in per.values()) == 6

    def test_cache_stats_aggregated(self, smoke_report):
        cache = smoke_report.stats["cache"]
        # decide + degraded decide + recovered decide per instance, the
        # recovery always served from cache
        assert cache["misses"] > 0
        assert cache["hits"] > 0

    def test_report_is_json_ready(self, smoke_report):
        data = json.loads(smoke_report.to_json())
        assert data["schema"] == 1
        assert data["instances"] == 6
        assert data["ok"] is True
        assert "topology sweep:" in smoke_report.format()

    def test_comparable_dict_drops_runtime_circumstances(
        self, smoke_report
    ):
        comparable = smoke_report.comparable_dict()
        for volatile in (
            "workers", "mode", "wall_seconds",
            "serial_parallel_identical",
        ):
            assert volatile not in comparable


class TestDeterminism:
    def test_serial_and_parallel_agree_bit_for_bit(self, smoke_report):
        parallel = run_topology_sweep(
            config=_CONFIG, workers=2, smoke=True
        )
        assert smoke_report.mode == "serial"
        assert parallel.mode == "parallel"
        assert (
            parallel.comparable_dict() == smoke_report.comparable_dict()
        )

    def test_different_seeds_differ(self, smoke_report):
        other = run_topology_sweep(
            config=TopologySweepConfig(
                seed=8, num_samples=16, resolution=400
            ),
            workers=1,
            smoke=True,
        )
        assert (
            other.comparable_dict() != smoke_report.comparable_dict()
        )

"""Unit tests for per-server response-time estimation."""

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.estimator.response_time import EmpiricalResponseTimes
from repro.sim.rng import RandomStreams
from repro.topology import (
    LinkProfile,
    ServerNode,
    Topology,
    estimate_server_benefit,
    estimate_topology_benefits,
    sample_response_times,
)


def _task(task_id="t0", wcet=0.2, period=1.0):
    return OffloadableTask(
        task_id=task_id,
        wcet=wcet,
        period=period,
        setup_time=0.02,
        compensation_time=wcet,
        post_time=0.005,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 1.0), BenefitPoint(0.5, 9.0)]
        ),
    )


class TestSampling:
    def test_sample_count_and_determinism(self):
        task = _task()
        server = ServerNode(server_id="s")
        a = sample_response_times(
            task, server, RandomStreams(7).get("x"), num_samples=32
        )
        b = sample_response_times(
            task, server, RandomStreams(7).get("x"), num_samples=32
        )
        assert len(a) == 32
        assert a.samples == b.samples

    def test_num_samples_validated(self):
        with pytest.raises(ValueError):
            sample_response_times(
                _task(),
                ServerNode(server_id="s"),
                RandomStreams(0).get("x"),
                num_samples=0,
            )

    def test_faster_server_responds_sooner(self):
        task = _task()
        slow = sample_response_times(
            task,
            ServerNode(server_id="s", speed=1.0),
            RandomStreams(3).get("x"),
            num_samples=64,
        )
        fast = sample_response_times(
            task,
            ServerNode(server_id="s", speed=8.0),
            RandomStreams(3).get("x"),
            num_samples=64,
        )
        assert fast.percentile(50) < slow.percentile(50)

    def test_lost_transfers_recorded_beyond_the_deadline(self):
        task = _task()
        # certain loss: every sample lands at deadline * 4
        lossy = ServerNode(
            server_id="s",
            link=LinkProfile(
                name="dead", bandwidth=1e6, loss_probability=1.0
            ),
        )
        samples = sample_response_times(
            task, lossy, RandomStreams(0).get("x"), num_samples=8
        )
        assert all(s == task.deadline * 4 for s in samples.samples)


class TestBenefitBuilding:
    def test_anchored_at_local_and_non_decreasing(self):
        task = _task()
        samples = EmpiricalResponseTimes([0.1, 0.2, 0.3, 0.4])
        fn = estimate_server_benefit(task, samples)
        assert fn.points[0].is_local
        assert fn.local_benefit == task.benefit.local_benefit
        values = [p.benefit for p in fn.points]
        assert values == sorted(values)
        # strictly increasing after the local point (dominated points
        # are dropped)
        assert len(set(values)) == len(values)
        assert fn.max_benefit <= task.benefit.max_benefit + 1e-12

    def test_hopeless_server_collapses_to_local_only(self):
        task = _task()
        samples = EmpiricalResponseTimes(
            [task.deadline * 4] * 16
        )
        fn = estimate_server_benefit(task, samples)
        # success probability at any feasible r is ~0: no offload point
        # survives inside the deadline
        feasible = [
            p
            for p in fn.points
            if not p.is_local and p.response_time < task.deadline
        ]
        assert feasible == []


class TestTopologyEstimation:
    def test_shapes_order_and_bounds(self):
        tasks = TaskSet(
            [_task("a"), _task("b"), Task("plain", 0.1, 1.0)]
        )
        topo = Topology(
            servers=(
                ServerNode(server_id="edge"),
                ServerNode(server_id="cloud", response_bound=0.4),
            )
        )
        benefits, bounds = estimate_topology_benefits(
            tasks, topo, RandomStreams(5), num_samples=16
        )
        assert list(benefits) == ["edge", "cloud"]
        assert set(benefits["edge"]) == {"a", "b"}  # no plain tasks
        assert set(bounds) == {"cloud"}
        assert bounds["cloud"] == {"a": 0.4, "b": 0.4}

    def test_streams_are_independent_per_server_and_task(self):
        tasks = TaskSet([_task("a"), _task("b")])
        solo = Topology(servers=(ServerNode(server_id="s0"),))
        pair = Topology(
            servers=(
                ServerNode(server_id="s0"),
                ServerNode(server_id="s1"),
            )
        )
        only, _ = estimate_topology_benefits(
            tasks, solo, RandomStreams(9), num_samples=16
        )
        both, _ = estimate_topology_benefits(
            tasks, pair, RandomStreams(9), num_samples=16
        )
        # adding a server must not perturb s0's estimates
        assert only["s0"] == both["s0"]

"""Shape tests for the experiment drivers (small-scale runs).

Each test checks the *reproduction contract* of its artifact: the
qualitative shape the paper reports must hold, not the absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments.ablations import (
    greedy_assignments,
    run_pessimism_ablation,
    run_solver_ablation,
    run_split_ablation,
)
from repro.experiments.fig2 import (
    WEIGHT_PERMUTATIONS,
    format_fig2,
    run_fig2,
)
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.table1 import format_table1, regenerate_table1
from repro.workloads.generator import random_offloading_task_set


class TestTable1Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return regenerate_table1(samples_per_level=30, seed=1)

    def test_rows_for_all_four_tasks(self, result):
        assert set(result.rows) == {"tau1", "tau2", "tau3", "tau4"}

    def test_response_times_increase_with_level(self, result):
        for rows in result.rows.values():
            rs = [r for r, _ in rows]
            assert rs == sorted(rs)

    def test_benefits_increase_with_level(self, result):
        for rows in result.rows.values():
            gs = [g for _, g in rows]
            assert gs == sorted(gs)

    def test_top_level_is_capped_psnr(self, result):
        for rows in result.rows.values():
            assert rows[-1][1] == pytest.approx(99.0)

    def test_magnitudes_comparable_to_published(self, result):
        """Measured r values live in the same hundreds-of-ms regime as
        the published ones (same order of magnitude)."""
        for task_id, rows in result.rows.items():
            measured = [r for r, _ in rows if r > 0]
            assert all(0.01 < r < 5.0 for r in measured)

    def test_formatting(self, result):
        text = format_table1(result)
        assert "tau1" in text and "published" in text


class TestFig2Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(
            permutations=list(WEIGHT_PERMUTATIONS[:4]),
            horizon=10.0,
            seed=0,
        )

    def test_all_series_normalized_at_least_one(self, result):
        for scenario in ("busy", "not_busy", "idle"):
            assert all(v >= 1.0 - 1e-9 for v in result.series(scenario))

    def test_scenario_ordering(self, result):
        """The paper's headline shape: more contention, less benefit."""
        assert (
            result.mean_normalized("idle")
            >= result.mean_normalized("not_busy")
            >= result.mean_normalized("busy")
        )

    def test_idle_strictly_better_than_busy(self, result):
        assert result.mean_normalized("idle") > result.mean_normalized(
            "busy"
        ) + 0.1

    def test_no_deadline_misses_anywhere(self, result):
        """The hard real-time guarantee across all 12 runs."""
        assert result.total_misses == 0

    def test_formatting(self, result):
        text = format_fig2(result)
        assert "Figure 2" in text
        assert "mean" in text

    def test_all_24_permutations_available(self):
        assert len(WEIGHT_PERMUTATIONS) == 24
        assert len(set(WEIGHT_PERMUTATIONS)) == 24


class TestFig3Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(
            accuracy_ratios=(-0.4, -0.2, 0.0, 0.2, 0.4),
            num_task_sets=4,
            num_tasks=15,
            seed=1,
        )

    def test_peak_at_perfect_estimation(self, result):
        assert result.peak_ratio("dp") == 0.0
        assert result.normalized["dp"][2] == pytest.approx(1.0)

    def test_degradation_on_both_sides(self, result):
        dp = result.normalized["dp"]
        assert dp[0] < 1.0 and dp[-1] < 1.0

    def test_heu_close_to_dp(self, result):
        for dp_v, heu_v in zip(result.normalized["dp"],
                               result.normalized["heu_oe"]):
            assert heu_v >= 0.9 * dp_v

    def test_dp_wins_at_perfect_estimation(self, result):
        assert (
            result.normalized["dp"][2]
            >= result.normalized["heu_oe"][2] - 1e-9
        )

    def test_requires_dp_for_normalization(self):
        with pytest.raises(ValueError):
            run_fig3(solvers=("heu_oe",), num_task_sets=1)

    def test_formatting(self, result):
        text = format_fig3(result)
        assert "Figure 3" in text


class TestAblations:
    def test_split_beats_naive(self):
        result = run_split_ablation(
            utilizations=(0.7, 0.9), sets_per_level=6, seed=2
        )
        # split must never miss on Theorem-3-vetted assignments
        assert all(m == 0 for m in result.missed_sets["split"])
        # naive must miss at least once in the high-utilization bucket
        assert sum(result.missed_sets["naive"]) > 0

    def test_solver_ablation_quality(self):
        result = run_solver_ablation(num_instances=6, seed=1)
        assert result.quality["branch_bound"] == pytest.approx(1.0)
        assert result.quality["dp"] >= 0.99
        assert 0.9 <= result.quality["heu_oe"] <= 1.0

    def test_pessimism_ablation_sound_and_ordered(self):
        result = run_pessimism_ablation(
            num_configurations=15, seed=3, validate_with_des=True
        )
        assert result.configurations > 0
        # exact accepts everything theorem3 accepts (dominance)
        assert result.exact_accepts >= result.theorem3_accepts
        # and the DES never catches an exact-accepted config missing
        assert result.unsound == 0

    def test_greedy_assignments_respect_budget(self, rng):
        from repro.core.schedulability import theorem3_test

        tasks = random_offloading_task_set(
            rng, num_tasks=6, total_utilization=0.8
        )
        assignments = greedy_assignments(tasks)
        assert theorem3_test(tasks, assignments).feasible

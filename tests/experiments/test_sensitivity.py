"""Tests for the sensitivity-analysis sweeps."""

import pytest

from repro.experiments.sensitivity import budget_sweep, price_curve
from repro.vision.tasks import table1_task_set


class TestPriceCurve:
    def test_local_point_first(self, table1_tasks):
        curve = price_curve(table1_tasks["tau3"])
        assert curve[0].response_time == 0.0
        assert curve[0].demand_rate == pytest.approx(
            table1_tasks["tau3"].utilization
        )

    def test_sorted_by_demand(self, table1_tasks):
        curve = price_curve(table1_tasks["tau4"])
        rates = [p.demand_rate for p in curve]
        assert rates == sorted(rates)

    def test_weights_match_odm(self, table1_tasks):
        """The curve and the MCKP must price points identically."""
        from repro.core.odm import build_mckp

        instance = build_mckp(table1_tasks)
        for task in table1_tasks:
            cls = instance.class_by_id(task.task_id)
            curve = {p.response_time: p.demand_rate
                     for p in price_curve(task)}
            for item in cls.items:
                assert curve[item.tag] == pytest.approx(item.weight)

    def test_infeasible_points_excluded(self, table1_tasks):
        for task in table1_tasks:
            for p in price_curve(task):
                if p.response_time > 0:
                    assert p.response_time < task.deadline

    def test_marginal_efficiency(self, table1_tasks):
        curve = price_curve(table1_tasks["tau1"])
        for p in curve:
            assert 0 < p.marginal_efficiency < float("inf")


class TestBudgetSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return budget_sweep(
            table1_task_set(), budgets=(0.5, 0.92, 0.95, 1.0, 1.1)
        )

    def test_below_local_utilization_infeasible(self, sweep):
        # all-local needs U ~ 0.91
        assert sweep[0].benefit is None

    def test_non_decreasing_in_budget(self, sweep):
        values = [p.benefit for p in sweep if p.benefit is not None]
        assert values == sorted(values)

    def test_larger_budget_offloads_more_or_same(self, sweep):
        feasible = [p for p in sweep if p.benefit is not None]
        counts = [len(p.offloaded_tasks) for p in feasible]
        assert counts[-1] >= counts[0]

    def test_budget_one_matches_odm(self, sweep):
        from repro.core.odm import OffloadingDecisionManager

        decision = OffloadingDecisionManager("dp").decide(
            table1_task_set()
        )
        at_one = next(p for p in sweep if p.budget == 1.0)
        assert at_one.benefit == pytest.approx(
            decision.expected_benefit, rel=1e-6
        )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            budget_sweep(table1_task_set(), budgets=(-0.1,))


class TestPercentileTradeoff:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments.sensitivity import percentile_tradeoff

        return percentile_tradeoff(
            percentiles=(50.0, 90.0, 99.0),
            samples_per_level=40,
            horizon=10.0,
            seed=1,
        )

    def test_no_misses_at_any_percentile(self, sweep):
        """The guarantee never depends on estimation quality."""
        assert all(p.deadline_misses == 0 for p in sweep)

    def test_higher_percentile_never_offloads_more(self, sweep):
        """Pessimistic estimates make every offload point costlier, so
        the offloaded set can only shrink (or stay) with the
        percentile."""
        counts = [len(p.offloaded_tasks) for p in sweep]
        assert counts == sorted(counts, reverse=True)

    def test_everything_measured(self, sweep):
        for point in sweep:
            assert 0.0 <= point.return_rate <= 1.0
            assert 0.0 <= point.compensation_rate <= 1.0
            assert point.realized_benefit > 0

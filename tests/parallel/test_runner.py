"""Unit tests for the process-parallel sweep runner.

The experiments layer depends on three invariants: results come back in
unit order, seeding is unit-local (so parallel == serial bit-for-bit),
and a broken pool degrades to the serial reference path instead of
failing the sweep.
"""

import math

import pytest

from repro.parallel import SweepRunner, resolve_workers
from repro.parallel.runner import _CHUNKS_PER_WORKER


def _square_plus(unit, offset):
    """Module-level (picklable) unit function with a common argument."""
    return unit * unit + offset


def _float_mix(unit, factor):
    """Float-sensitive work: any reordering would change the bits."""
    total = 0.0
    for k in range(1, 50):
        total += math.sin(unit * factor / k)
    return total


def _maybe_fail(unit):
    if unit == 3:
        raise ValueError("unit 3 is poisoned")
    return unit


def _draw(unit, streams):
    """map_seeded unit: draw from the spawned per-unit stream."""
    return streams.get("x").random(4).tolist()


class TestResolveWorkers:
    def test_none_and_zero_mean_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1

    def test_negative_means_all_cores(self):
        import os

        assert resolve_workers(-1) == (os.cpu_count() or 1)

    def test_literal(self):
        assert resolve_workers(5) == 5


class TestSweepRunnerSerial:
    def test_map_preserves_order_and_common_args(self):
        runner = SweepRunner(workers=1)
        assert runner.map(_square_plus, [3, 1, 2], 10) == [19, 11, 14]
        assert runner.last_mode == "serial"

    def test_map_empty(self):
        assert SweepRunner().map(_square_plus, [], 0) == []

    def test_unit_exception_propagates(self):
        with pytest.raises(ValueError, match="poisoned"):
            SweepRunner(workers=1).map(_maybe_fail, range(5))

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(chunk_size=0)

    def test_chunks_cover_all_units(self):
        runner = SweepRunner(workers=3)
        spans = runner._chunks(17)
        covered = [i for span in spans for i in span]
        assert covered == list(range(17))
        assert len(spans) <= 3 * _CHUNKS_PER_WORKER + 1


class TestSweepRunnerParallel:
    def test_parallel_matches_serial_bit_for_bit(self):
        units = list(range(23))
        serial = SweepRunner(workers=1).map(_float_mix, units, 0.7)
        runner = SweepRunner(workers=3)
        parallel = runner.map(_float_mix, units, 0.7)
        # bit-for-bit: not approx-equal — identical floats
        assert parallel == serial

    def test_parallel_preserves_order(self):
        runner = SweepRunner(workers=2)
        assert runner.map(_square_plus, [5, 4, 3, 2, 1, 0], 0) == [
            25, 16, 9, 4, 1, 0,
        ]

    def test_unpicklable_fn_falls_back_to_serial(self):
        runner = SweepRunner(workers=2)
        result = runner.map(lambda u: u + 1, [1, 2, 3, 4])
        assert result == [2, 3, 4, 5]
        assert runner.last_mode == "serial"

    def test_unit_exception_raises_via_fallback(self):
        """A genuine unit error must surface, not vanish in the pool."""
        with pytest.raises(ValueError, match="poisoned"):
            SweepRunner(workers=2).map(_maybe_fail, range(5))

    def test_single_unit_stays_serial(self):
        runner = SweepRunner(workers=4)
        assert runner.map(_square_plus, [7], 1) == [50]
        assert runner.last_mode == "serial"


class TestMapSeeded:
    def test_streams_are_unit_local(self):
        """Unit i draws the same sequence at any worker count."""
        units = list(range(9))
        serial = SweepRunner(workers=1).map_seeded(_draw, units, 42)
        parallel = SweepRunner(workers=3).map_seeded(_draw, units, 42)
        assert parallel == serial

    def test_different_units_draw_differently(self):
        rows = SweepRunner(workers=1).map_seeded(_draw, range(3), 42)
        assert rows[0] != rows[1] != rows[2]

    def test_different_seeds_draw_differently(self):
        a = SweepRunner(workers=1).map_seeded(_draw, range(3), 1)
        b = SweepRunner(workers=1).map_seeded(_draw, range(3), 2)
        assert a != b

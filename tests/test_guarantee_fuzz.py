"""Failure-injection fuzzing of the hard real-time guarantee.

The central claim of the paper: once the Theorem 3 test accepts a
configuration, NO behaviour of the unreliable component can cause a
deadline miss — results may arrive instantly, arbitrarily late, or
never, in any per-job mix.  These tests throw randomized adversarial
transports, execution-time variation and sporadic release jitter at the
split-deadline scheduler and assert the guarantee holds every time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedulability import theorem3_test
from repro.experiments.ablations import greedy_assignments
from repro.faults import FaultInjectionTransport, FaultSchedule
from repro.sched.exec_time import UniformScaleModel
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import (
    DistributionTransport,
    NeverRespondsTransport,
)
from repro.sim.engine import Simulator
from repro.workloads.generator import random_offloading_task_set


class ChaoticTransport:
    """Adversarial per-request behaviour: instant, late, or silent."""

    def __init__(self, sim: Simulator, rng: np.random.Generator) -> None:
        self.sim = sim
        self.rng = rng

    def submit(self, request, on_result):
        roll = self.rng.random()
        if roll < 0.3:
            return  # never respond
        if roll < 0.6:
            latency = float(self.rng.uniform(0.0, 0.2 * request.response_budget))
        else:
            # late: just past the budget up to absurdly late
            latency = float(
                request.response_budget * self.rng.uniform(1.0, 10.0)
            )
        self.sim.schedule(latency, lambda ev: on_result(ev.time))


def _feasible_configuration(seed: int):
    rng = np.random.default_rng(seed)
    utilization = float(rng.uniform(0.4, 0.9))
    tasks = random_offloading_task_set(
        rng, num_tasks=int(rng.integers(3, 8)),
        total_utilization=utilization,
    )
    assignments = greedy_assignments(tasks)
    response_times = {a.task_id: a.response_time for a in assignments}
    assert theorem3_test(tasks, assignments).feasible
    return tasks, response_times, rng


@pytest.mark.parametrize("seed", range(15))
def test_chaotic_server_never_breaks_deadlines(seed):
    tasks, response_times, rng = _feasible_configuration(seed)
    sim = Simulator()
    scheduler = OffloadingScheduler(
        sim, tasks, response_times=response_times,
        transport=ChaoticTransport(sim, rng),
    )
    horizon = 25.0 * max(t.period for t in tasks)
    trace = scheduler.run(horizon)
    assert trace.all_deadlines_met, (
        f"seed {seed}: {trace.deadline_miss_count} misses under chaos"
    )
    assert len(trace.jobs) > 10  # the run actually exercised releases
    # the schedule must also be a *correct* EDF schedule, not just lucky
    from repro.sched.validator import validate_schedule

    assert validate_schedule(trace) == []


@pytest.mark.parametrize("seed", range(10))
def test_variable_execution_times_never_break_deadlines(seed):
    """Actual execution below WCET can only help — verify it does."""
    tasks, response_times, rng = _feasible_configuration(seed + 500)
    sim = Simulator()
    scheduler = OffloadingScheduler(
        sim, tasks, response_times=response_times,
        transport=ChaoticTransport(sim, rng),
        exec_model=UniformScaleModel(low_fraction=0.3, rng=rng),
    )
    trace = scheduler.run(20.0 * max(t.period for t in tasks))
    assert trace.all_deadlines_met


@pytest.mark.parametrize("seed", range(10))
def test_sporadic_releases_never_break_deadlines(seed):
    """Sporadic (late) releases only reduce demand; the guarantee must
    survive random inter-arrival inflation."""
    tasks, response_times, rng = _feasible_configuration(seed + 900)
    sim = Simulator()
    scheduler = OffloadingScheduler(
        sim, tasks, response_times=response_times,
        transport=NeverRespondsTransport(),
        release_jitter=lambda task: float(
            rng.exponential(0.3 * task.period)
        ),
    )
    trace = scheduler.run(20.0 * max(t.period for t in tasks))
    assert trace.all_deadlines_met


@pytest.mark.parametrize("seed", range(10))
def test_injected_fault_schedules_never_break_deadlines(seed):
    """Seeded chaos on top of a stochastic transport: crash windows,
    partitions, drops and delivery faults may only cost benefit — the
    no-deadline-miss invariant must survive every schedule."""
    tasks, response_times, rng = _feasible_configuration(seed + 1300)
    sim = Simulator()
    horizon = 20.0 * max(t.period for t in tasks)
    schedule = FaultSchedule.random(rng, horizon=horizon, mean_faults=6.0)
    inner = DistributionTransport(
        sim,
        latency_sampler=lambda: float(rng.exponential(0.05)),
        loss_probability=0.05,
        rng=rng,
    )
    transport = FaultInjectionTransport(sim, inner, schedule, rng=rng)
    scheduler = OffloadingScheduler(
        sim, tasks, response_times=response_times, transport=transport,
    )
    trace = scheduler.run(horizon)
    assert trace.all_deadlines_met, (
        f"seed {seed}: {trace.deadline_miss_count} misses under "
        f"schedule {schedule!r}"
    )


@pytest.mark.parametrize(
    "builder",
    [
        lambda horizon: FaultSchedule.outage(0.0, horizon),  # dead forever
        lambda horizon: FaultSchedule.outage(horizon * 0.2, horizon * 0.6),
        lambda horizon: FaultSchedule.partition(0.0, horizon * 0.5),
        lambda horizon: FaultSchedule.latency_storm(
            0.0, horizon, extra_latency=horizon
        ),
    ],
    ids=["permanent-crash", "mid-run-crash", "partition", "storm"],
)
def test_scripted_fault_schedules_never_break_deadlines(builder):
    tasks, response_times, rng = _feasible_configuration(77)
    sim = Simulator()
    horizon = 20.0 * max(t.period for t in tasks)
    inner = DistributionTransport(
        sim, latency_sampler=lambda: float(rng.exponential(0.05)), rng=rng
    )
    transport = FaultInjectionTransport(
        sim, inner, builder(horizon), rng=rng
    )
    scheduler = OffloadingScheduler(
        sim, tasks, response_times=response_times, transport=transport,
    )
    trace = scheduler.run(horizon)
    assert trace.all_deadlines_met


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=25, deadline=None)
def test_guarantee_property(seed):
    """Hypothesis-driven version over the full seed space."""
    tasks, response_times, rng = _feasible_configuration(seed)
    sim = Simulator()
    scheduler = OffloadingScheduler(
        sim, tasks, response_times=response_times,
        transport=ChaoticTransport(sim, rng),
        exec_model=UniformScaleModel(low_fraction=0.5, rng=rng),
    )
    trace = scheduler.run(12.0 * max(t.period for t in tasks))
    assert trace.all_deadlines_met

"""Tests for workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.odm import OffloadingDecisionManager
from repro.workloads.generator import (
    paper_simulation_task_set,
    random_offloading_task_set,
    uunifast,
)


class TestPaperGenerator:
    def test_matches_section_6_2_parameters(self, rng):
        tasks = paper_simulation_task_set(rng)
        assert len(tasks) == 30
        for task in tasks:
            assert 0 < task.wcet <= 0.020
            assert 0 < task.setup_time <= 0.020
            assert task.compensation_time == task.wcet
            assert 0.600 <= task.period <= 0.700
            assert task.deadline == task.period  # implicit
            # benefit: local 0 plus 10 probability points
            assert task.benefit.num_points == 11
            assert task.benefit.local_benefit == 0.0
            offload_rs = task.benefit.response_times[1:]
            assert all(0.100 <= r <= 0.200 for r in offload_rs)
            assert list(offload_rs) == sorted(offload_rs)
            benefits = [p.benefit for p in task.benefit.points[1:]]
            np.testing.assert_allclose(
                benefits, [k / 10 for k in range(1, 11)]
            )

    def test_deterministic_per_seed(self):
        a = paper_simulation_task_set(np.random.default_rng(3))
        b = paper_simulation_task_set(np.random.default_rng(3))
        assert [t.wcet for t in a] == [t.wcet for t in b]

    def test_nontrivial_knapsack(self, rng):
        """All-max offloading must exceed the budget — otherwise the
        MCKP is trivial and Figure 3 degenerates."""
        tasks = paper_simulation_task_set(rng)
        total = sum(
            t.offload_demand_rate(t.benefit.response_times[-1])
            for t in tasks
        )
        assert total > 1.0

    def test_decidable(self, rng):
        tasks = paper_simulation_task_set(rng, num_tasks=10)
        decision = OffloadingDecisionManager("dp").decide(tasks)
        assert decision.schedulability.feasible

    def test_invalid_count_rejected(self, rng):
        with pytest.raises(ValueError):
            paper_simulation_task_set(rng, num_tasks=0)


class TestUunifast:
    @given(
        n=st.integers(min_value=1, max_value=20),
        u=st.floats(min_value=0.05, max_value=0.99),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50)
    def test_sums_to_target_and_positive(self, n, u, seed):
        rng = np.random.default_rng(seed)
        utils = uunifast(rng, n, u)
        assert len(utils) == n
        assert sum(utils) == pytest.approx(u)
        assert all(x >= 0 for x in utils)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            uunifast(rng, 0, 0.5)
        with pytest.raises(ValueError):
            uunifast(rng, 3, 0.0)


class TestAblationGenerator:
    def test_total_utilization_hit(self, rng):
        tasks = random_offloading_task_set(
            rng, num_tasks=8, total_utilization=0.7
        )
        assert tasks.total_utilization == pytest.approx(0.7, abs=0.05)

    def test_structure(self, rng):
        tasks = random_offloading_task_set(rng, num_tasks=5)
        for task in tasks:
            assert task.setup_time == pytest.approx(0.3 * task.wcet)
            assert task.compensation_time == task.wcet
            rs = task.benefit.response_times[1:]
            assert all(0 < r < task.deadline for r in rs)
            benefits = [p.benefit for p in task.benefit.points]
            assert benefits == sorted(benefits)

    def test_fraction_validation(self, rng):
        with pytest.raises(ValueError):
            random_offloading_task_set(
                rng, response_time_fraction=(0.6, 0.5)
            )

"""Tests for task-set JSON serialization."""

import json

import numpy as np
import pytest

from repro.core.task import OffloadableTask, Task
from repro.workloads.generator import paper_simulation_task_set
from repro.workloads.io import (
    dumps,
    loads,
    task_set_from_dict,
    task_set_to_dict,
)
from repro.vision.tasks import table1_task_set


class TestRoundTrip:
    def test_table1_round_trips_exactly(self):
        original = table1_task_set()
        restored = loads(dumps(original))
        assert restored.task_ids == original.task_ids
        for a, b in zip(original, restored):
            assert type(a) is type(b)
            assert a.wcet == b.wcet
            assert a.period == b.period
            assert a.deadline == b.deadline
            assert a.weight == b.weight
            if isinstance(a, OffloadableTask):
                assert a.benefit == b.benefit
                assert a.setup_time == b.setup_time
                assert a.compensation_time == b.compensation_time
                assert a.post_time == b.post_time
                assert a.server_response_bound == b.server_response_bound

    def test_random_workload_round_trips(self):
        original = paper_simulation_task_set(
            np.random.default_rng(3), num_tasks=10
        )
        restored = loads(dumps(original))
        assert restored.total_utilization == pytest.approx(
            original.total_utilization
        )
        for a, b in zip(original, restored):
            assert a.benefit == b.benefit

    def test_plain_tasks_round_trip(self):
        from repro.core.task import TaskSet

        original = TaskSet([Task("p", 0.1, 1.0, deadline=0.8, weight=2.0)])
        restored = loads(dumps(original))
        task = restored["p"]
        assert not isinstance(task, OffloadableTask)
        assert task.deadline == 0.8
        assert task.weight == 2.0

    def test_decisions_identical_after_round_trip(self):
        """The ultimate fidelity check: the ODM makes the same decision
        on the restored set."""
        from repro.core.odm import OffloadingDecisionManager

        original = table1_task_set()
        restored = loads(dumps(original))
        d1 = OffloadingDecisionManager("dp").decide(original)
        d2 = OffloadingDecisionManager("dp").decide(restored)
        assert dict(d1.response_times) == dict(d2.response_times)


class TestEnvelope:
    def test_format_marker(self):
        data = task_set_to_dict(table1_task_set())
        assert data["format"] == "repro-taskset"
        assert data["version"] == 1

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-taskset"):
            task_set_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported version"):
            task_set_from_dict({"format": "repro-taskset", "version": 99})

    def test_output_is_valid_json(self):
        parsed = json.loads(dumps(table1_task_set()))
        assert len(parsed["tasks"]) == 4

    def test_hand_edited_violations_fail_loudly(self):
        data = task_set_to_dict(table1_task_set())
        data["tasks"][0]["post_time"] = 99.0  # violates C3 <= C2
        with pytest.raises(ValueError, match="C_i,3"):
            task_set_from_dict(data)

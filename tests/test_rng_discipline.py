"""RNG-discipline audit: all library randomness is seeded and named.

The reproduction's contract is that every artifact — tables, figures,
chaos runs, loadgen traffic — is a pure function of its seed.  That
only holds if no code path draws from ambient global RNG state.  These
tests enforce the discipline statically (AST scan of ``src/repro``,
the conftest guard) and dynamically (stream independence and spawn
stability of :mod:`repro.sim.rng`, reproducibility of the service
loadgen trace).
"""

from pathlib import Path

import numpy as np

from repro.sim.rng import RandomStreams, derive_seed, spawn_streams
from tests.conftest import scan_rng_discipline

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_src_is_free_of_bare_global_rng():
    violations = scan_rng_discipline(SRC)
    assert not violations, (
        "nondeterministic RNG use in src/repro — route through "
        "repro.sim.rng (RandomStreams / spawn_streams / seeded "
        "default_rng):\n" + "\n".join(violations)
    )


def test_guard_catches_bare_numpy_draw(tmp_path):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(
        "import numpy as np\n"
        "x = np.random.random()\n"
        "rng = np.random.default_rng()\n"
    )
    violations = scan_rng_discipline(tmp_path / "src")
    assert len(violations) == 2
    assert any("np.random.random" in v for v in violations)
    assert any("default_rng() without a seed" in v for v in violations)


def test_guard_catches_stdlib_random(tmp_path):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("from random import choice\nimport random\n")
    assert len(scan_rng_discipline(tmp_path / "src")) == 2


def test_guard_allows_seeded_constructors(tmp_path):
    good = tmp_path / "src" / "good.py"
    good.parent.mkdir()
    good.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng(7)\n"
        "seq = np.random.SeedSequence(3)\n"
        "gen = np.random.Generator(np.random.PCG64(seq))\n"
    )
    assert scan_rng_discipline(tmp_path / "src") == []


def test_derive_seed_is_deterministic_and_spread():
    assert derive_seed(42, "network") == derive_seed(42, "network")
    assert derive_seed(42, "network") != derive_seed(42, "gpu")
    assert derive_seed(42, "network") != derive_seed(43, "network")


def test_named_streams_are_independent():
    streams = RandomStreams(seed=11)
    a = streams.get("a").random(8)
    # drawing from another stream must not perturb the first
    streams.get("b").random(1000)
    fresh = RandomStreams(seed=11)
    fresh.get("b")  # creation order must not matter either
    assert np.array_equal(fresh.get("a").random(8), a)


def test_spawn_streams_stable_under_index():
    """Stream ``i`` depends only on (seed, i), never on the count."""
    wide = spawn_streams(5, 8)
    narrow = spawn_streams(5, 3)
    for i in range(3):
        assert wide[i].seed == narrow[i].seed


def test_loadgen_trace_is_a_function_of_its_seed():
    from repro.service import LoadGenConfig, generate_bursts

    config = LoadGenConfig(seed=3, bursts=4, unique_sets=2, num_tasks=3)
    first = generate_bursts(config)
    second = generate_bursts(config)
    assert [b.time for b in first] == [b.time for b in second]
    for x, y in zip(first, second):
        assert [r.to_dict() for r in x.requests] == [
            r.to_dict() for r in y.requests
        ]
    other = generate_bursts(
        LoadGenConfig(seed=4, bursts=4, unique_sets=2, num_tasks=3)
    )
    assert [r.request_id for b in first for r in b.requests] != [
        r.request_id for b in other for r in b.requests
    ] or [r.to_dict() for b in first for r in b.requests] != [
        r.to_dict() for b in other for r in b.requests
    ]

"""Unit tests for the task model."""

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task, TaskSet


class TestTaskValidation:
    def test_basic_construction(self):
        t = Task("t", wcet=0.1, period=1.0)
        assert t.deadline == 1.0  # implicit deadline
        assert t.is_implicit_deadline

    def test_constrained_deadline_allowed(self):
        t = Task("t", wcet=0.1, period=1.0, deadline=0.5)
        assert t.deadline == 0.5
        assert not t.is_implicit_deadline

    def test_deadline_beyond_period_rejected(self):
        with pytest.raises(ValueError, match="exceeds period"):
            Task("t", wcet=0.1, period=1.0, deadline=1.5)

    def test_wcet_beyond_deadline_rejected(self):
        with pytest.raises(ValueError, match="exceeds deadline"):
            Task("t", wcet=0.6, period=1.0, deadline=0.5)

    @pytest.mark.parametrize("field,value", [
        ("wcet", 0.0), ("wcet", -1.0), ("period", 0.0), ("period", -1.0),
    ])
    def test_nonpositive_times_rejected(self, field, value):
        kwargs = {"task_id": "t", "wcet": 0.1, "period": 1.0}
        kwargs[field] = value
        with pytest.raises(ValueError):
            Task(**kwargs)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Task("", wcet=0.1, period=1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Task("t", wcet=0.1, period=1.0, weight=-1.0)

    def test_utilization_and_density(self):
        t = Task("t", wcet=0.2, period=1.0, deadline=0.5)
        assert t.utilization == pytest.approx(0.2)
        assert t.density == pytest.approx(0.4)

    def test_plain_task_not_offloadable(self):
        assert not Task("t", wcet=0.1, period=1.0).offloadable


class TestOffloadableTaskValidation:
    def _make(self, **overrides):
        kwargs = dict(
            task_id="o",
            wcet=0.1,
            period=1.0,
            setup_time=0.02,
            compensation_time=0.1,
            post_time=0.01,
        )
        kwargs.update(overrides)
        return OffloadableTask(**kwargs)

    def test_valid(self):
        assert self._make().offloadable

    def test_post_exceeding_compensation_rejected(self):
        """The model assumption C_i,3 <= C_i,2 is enforced."""
        with pytest.raises(ValueError, match="C_i,3"):
            self._make(post_time=0.2)

    def test_zero_setup_rejected(self):
        with pytest.raises(ValueError):
            self._make(setup_time=0.0)

    def test_zero_compensation_rejected(self):
        with pytest.raises(ValueError):
            self._make(compensation_time=0.0)

    def test_default_benefit_is_degenerate_local(self):
        task = self._make()
        assert task.benefit.num_points == 1
        assert task.benefit.local_benefit == 0.0


class TestPerLevelResolution:
    def _task(self):
        benefit = BenefitFunction(
            [
                BenefitPoint(0.0, 0.0),
                BenefitPoint(0.2, 1.0, setup_time=0.03,
                             compensation_time=0.12),
                BenefitPoint(0.4, 2.0),  # no overrides -> task defaults
            ]
        )
        return OffloadableTask(
            task_id="o", wcet=0.1, period=1.0,
            setup_time=0.02, compensation_time=0.1, benefit=benefit,
        )

    def test_override_used_when_present(self):
        task = self._task()
        assert task.setup_time_at(0.2) == 0.03
        assert task.compensation_time_at(0.2) == 0.12

    def test_defaults_used_when_absent(self):
        task = self._task()
        assert task.setup_time_at(0.4) == 0.02
        assert task.compensation_time_at(0.4) == 0.1

    def test_unknown_level_raises(self):
        with pytest.raises(KeyError):
            self._task().setup_time_at(0.3)

    def test_offload_demand_rate_formula(self):
        task = self._task()
        # (C1 + C2) / (D - R) with level overrides at r=0.2
        expected = (0.03 + 0.12) / (1.0 - 0.2)
        assert task.offload_demand_rate(0.2) == pytest.approx(expected)

    def test_offload_demand_rate_requires_positive_r(self):
        with pytest.raises(ValueError):
            self._task().offload_demand_rate(0.0)

    def test_offload_demand_rate_requires_slack(self):
        benefit = BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(1.0, 1.0)]
        )
        task = OffloadableTask(
            task_id="o", wcet=0.1, period=1.0,
            setup_time=0.02, compensation_time=0.1, benefit=benefit,
        )
        with pytest.raises(ValueError, match="slack"):
            task.offload_demand_rate(1.0)


class TestTaskSet:
    def test_iteration_preserves_order(self):
        a, b = Task("a", 0.1, 1.0), Task("b", 0.1, 2.0)
        ts = TaskSet([a, b])
        assert list(ts) == [a, b]
        assert ts.task_ids == ("a", "b")

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet([Task("a", 0.1, 1.0), Task("a", 0.2, 2.0)])

    def test_lookup_by_id_and_index(self):
        a = Task("a", 0.1, 1.0)
        ts = TaskSet([a])
        assert ts["a"] is a
        assert ts[0] is a
        assert "a" in ts
        assert "z" not in ts

    def test_total_utilization(self):
        ts = TaskSet([Task("a", 0.2, 1.0), Task("b", 0.3, 1.0)])
        assert ts.total_utilization == pytest.approx(0.5)

    def test_offloadable_tasks_filter(self, offload_task, local_task):
        ts = TaskSet([offload_task, local_task])
        assert ts.offloadable_tasks == [offload_task]

    def test_hyperperiod(self):
        ts = TaskSet([Task("a", 0.1, 0.5), Task("b", 0.1, 0.75)])
        assert ts.hyperperiod == pytest.approx(1.5)

    def test_validate_rejects_overutilization(self):
        ts = TaskSet([Task("a", 0.9, 1.0), Task("b", 0.2, 1.0)])
        with pytest.raises(ValueError, match="exceeds 1"):
            ts.validate()

    def test_validate_accepts_feasible(self, small_task_set):
        small_task_set.validate()  # must not raise

    def test_len(self, small_task_set):
        assert len(small_task_set) == 2

"""Tests for the §3 extension: pessimistic server response bound.

When the unreliable component has a (pessimistic) upper bound on its
response time and ``R_i`` is set at or above it, the result is
guaranteed to arrive — so the second execution phase is budgeted as
``C_{i,3}`` (post-processing) instead of ``C_{i,2}`` (compensation),
across the analysis, the MCKP reduction and the scheduler.
"""

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.deadlines import split_deadlines
from repro.core.odm import OffloadingDecisionManager, build_mckp
from repro.core.schedulability import OffloadAssignment, theorem3_test
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import (
    FixedLatencyTransport,
    NeverRespondsTransport,
)
from repro.sim.engine import Simulator


def _bounded_task(bound=0.25, post=0.02, r_points=(0.2, 0.3)):
    return OffloadableTask(
        task_id="b",
        wcet=0.15,
        period=1.0,
        setup_time=0.03,
        compensation_time=0.15,
        post_time=post,
        server_response_bound=bound,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 1.0)]
            + [
                BenefitPoint(r, 2.0 + k)
                for k, r in enumerate(r_points)
            ]
        ),
    )


class TestTaskModel:
    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError, match="server_response_bound"):
            _bounded_task(bound=0.0)

    def test_result_guaranteed_threshold(self):
        task = _bounded_task(bound=0.25)
        assert not task.result_guaranteed(0.2)
        assert task.result_guaranteed(0.25)
        assert task.result_guaranteed(0.3)

    def test_no_bound_never_guarantees(self):
        task = OffloadableTask(
            task_id="u", wcet=0.1, period=1.0,
            setup_time=0.02, compensation_time=0.1,
        )
        assert not task.result_guaranteed(10.0)

    def test_second_phase_wcet_switches(self):
        task = _bounded_task(bound=0.25, post=0.02)
        assert task.second_phase_wcet(0.2) == pytest.approx(0.15)  # C2
        assert task.second_phase_wcet(0.3) == pytest.approx(0.02)  # C3

    def test_demand_rate_cheaper_beyond_bound(self):
        task = _bounded_task(bound=0.25, post=0.02)
        below = task.offload_demand_rate(0.2)  # (0.03+0.15)/0.8
        above = task.offload_demand_rate(0.3)  # (0.03+0.02)/0.7
        assert below == pytest.approx(0.18 / 0.8)
        assert above == pytest.approx(0.05 / 0.7)
        assert above < below


class TestAnalysis:
    def test_split_uses_post_budget_beyond_bound(self):
        task = _bounded_task(bound=0.25, post=0.02)
        split = split_deadlines(task, 0.3)
        assert split.compensation_wcet == pytest.approx(0.02)
        # proportional split over C1=0.03, C3=0.02
        assert split.setup_deadline == pytest.approx(
            0.03 * (1.0 - 0.3) / 0.05
        )

    def test_theorem3_reflects_the_bound(self):
        task = _bounded_task(bound=0.25, post=0.02)
        tasks = TaskSet([task])
        result = theorem3_test(tasks, [OffloadAssignment("b", 0.3)])
        assert result.total_demand_rate == pytest.approx(0.05 / 0.7)

    def test_mckp_items_cheaper_beyond_bound(self):
        tasks = TaskSet([_bounded_task(bound=0.25, post=0.02)])
        cls = build_mckp(tasks).class_by_id("b")
        weights = {item.tag: item.weight for item in cls.items}
        assert weights[0.3] < weights[0.2]

    def test_odm_prefers_guaranteed_high_benefit_point(self):
        """With the bound, the 0.3 point is both higher-benefit AND
        cheaper — the ODM must pick it."""
        tasks = TaskSet(
            [_bounded_task(bound=0.25, post=0.02), Task("l", 0.7, 1.0)]
        )
        decision = OffloadingDecisionManager("dp").decide(tasks)
        assert decision.response_time_of("b") == pytest.approx(0.3)


class TestScheduler:
    def test_result_within_bound_takes_post_path(self):
        tasks = TaskSet([_bounded_task(bound=0.25, post=0.02)])
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, response_times={"b": 0.3},
            transport=FixedLatencyTransport(sim, latency=0.2),
        )
        trace = scheduler.run(3.0)
        assert trace.all_deadlines_met
        assert trace.model_violations == 0
        assert all(rec.result_returned for rec in trace.jobs_of("b"))

    def test_bound_violation_is_surfaced(self):
        """If the 'guaranteed' server still fails, the run records a
        model violation instead of silently compensating."""
        tasks = TaskSet([_bounded_task(bound=0.25, post=0.02)])
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, tasks, response_times={"b": 0.3},
            transport=NeverRespondsTransport(),
        )
        trace = scheduler.run(2.5)
        assert trace.model_violations == len(trace.jobs_of("b"))

    def test_unbounded_compensation_is_not_a_violation(self):
        task = OffloadableTask(
            task_id="u", wcet=0.1, period=1.0,
            setup_time=0.02, compensation_time=0.1,
            benefit=BenefitFunction(
                [BenefitPoint(0.0, 0.0), BenefitPoint(0.3, 1.0)]
            ),
        )
        sim = Simulator()
        scheduler = OffloadingScheduler(
            sim, TaskSet([task]), response_times={"u": 0.3},
            transport=NeverRespondsTransport(),
        )
        trace = scheduler.run(2.5)
        assert trace.model_violations == 0
        assert trace.compensation_rate() == 1.0

"""Tests for the multi-server offloading extension."""

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.multiserver import (
    MultiServerDecisionManager,
    RoutingTransport,
    build_multiserver_mckp,
)
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import FixedLatencyTransport
from repro.sim.engine import Simulator


def _task(task_id="m", wcet=0.2, period=1.0):
    return OffloadableTask(
        task_id=task_id, wcet=wcet, period=period,
        setup_time=0.02, compensation_time=wcet,
        benefit=BenefitFunction([BenefitPoint(0.0, 1.0)]),
    )


def _benefits(fast_value=8.0, slow_value=5.0):
    """Two servers: 'edge' is fast (small r), 'cloud' slower but offers
    a higher top quality."""
    return {
        "edge": {
            "m": BenefitFunction(
                [BenefitPoint(0.0, 1.0), BenefitPoint(0.1, fast_value)]
            ),
        },
        "cloud": {
            "m": BenefitFunction(
                [BenefitPoint(0.0, 1.0), BenefitPoint(0.4, slow_value)]
            ),
        },
    }


class TestBuildMckp:
    def test_items_span_servers(self):
        tasks = TaskSet([_task()])
        instance = build_multiserver_mckp(tasks, _benefits())
        cls = instance.class_by_id("m")
        tags = {item.tag for item in cls.items}
        assert (None, 0.0) in tags
        assert ("edge", 0.1) in tags
        assert ("cloud", 0.4) in tags

    def test_task_absent_from_server_not_offered(self):
        tasks = TaskSet([_task(), _task("other")])
        benefits = _benefits()
        instance = build_multiserver_mckp(tasks, benefits)
        other = instance.class_by_id("other")
        assert len(other.items) == 1  # local only

    def test_plain_tasks_stay_local_only(self):
        tasks = TaskSet([Task("p", 0.1, 1.0)])
        instance = build_multiserver_mckp(tasks, {})
        assert len(instance.class_by_id("p").items) == 1

    def test_infeasible_points_filtered(self):
        tasks = TaskSet([_task(period=0.3)])  # D=0.3 < cloud's r=0.4
        instance = build_multiserver_mckp(tasks, _benefits())
        tags = {item.tag for item in instance.class_by_id("m").items}
        assert ("cloud", 0.4) not in tags


class TestDecision:
    def test_prefers_better_server(self):
        """Edge offers more value at lower weight — must win."""
        tasks = TaskSet([_task()])
        decision = MultiServerDecisionManager("dp").decide(
            tasks, _benefits(fast_value=8.0, slow_value=5.0)
        )
        assert decision.server_of("m") == "edge"
        assert decision.response_times["m"] == pytest.approx(0.1)
        assert decision.routes == {"m": "edge"}

    def test_picks_slow_server_when_it_pays(self):
        tasks = TaskSet([_task()])
        decision = MultiServerDecisionManager("dp").decide(
            tasks, _benefits(fast_value=3.0, slow_value=9.0)
        )
        assert decision.server_of("m") == "cloud"

    def test_local_when_nothing_fits(self):
        # a heavy local task eats the budget (offloading "m" at any
        # server point costs more than its 0.2 local utilization)
        tasks = TaskSet([_task(), Task("hog", 0.78, 1.0)])
        decision = MultiServerDecisionManager("dp").decide(
            tasks, _benefits()
        )
        assert decision.server_of("m") is None
        assert decision.response_times["m"] == 0.0

    def test_feasibility_verified(self):
        tasks = TaskSet([_task()])
        decision = MultiServerDecisionManager("dp").decide(
            tasks, _benefits()
        )
        assert decision.schedulability.feasible

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            MultiServerDecisionManager("nope")


class TestRoutingTransport:
    def test_routes_to_assigned_server(self, sim):
        fast = FixedLatencyTransport(sim, latency=0.01)
        slow = FixedLatencyTransport(sim, latency=0.5)
        routing = RoutingTransport(
            routes={"m": "edge"},
            transports={"edge": fast, "cloud": slow},
        )
        tasks = TaskSet([_task()])
        scheduler = OffloadingScheduler(
            sim, tasks, response_times={"m": 0.1}, transport=routing,
        )
        trace = scheduler.run(2.5)
        assert fast.submitted > 0
        assert slow.submitted == 0
        assert trace.all_deadlines_met

    def test_unknown_server_in_routes_rejected(self):
        with pytest.raises(ValueError, match="unknown servers"):
            RoutingTransport(routes={"m": "mars"}, transports={})

    def test_unrouted_task_rejected_at_submit(self, sim):
        routing = RoutingTransport(routes={}, transports={})
        tasks = TaskSet([_task()])
        scheduler = OffloadingScheduler(
            sim, tasks, response_times={"m": 0.1}, transport=routing,
        )
        scheduler.start(1.0)
        with pytest.raises(ValueError, match="no route"):
            sim.run_until(1.0)


class TestEndToEnd:
    def test_two_servers_full_pipeline(self, sim):
        """Decide across two simulated servers, run, verify guarantee
        and that the realized benefit matches the chosen levels."""
        tasks = TaskSet(
            [_task("a", wcet=0.2), _task("b", wcet=0.25), Task("l", 0.3, 1.0)]
        )
        benefits = {
            "edge": {
                "a": BenefitFunction(
                    [BenefitPoint(0.0, 1.0), BenefitPoint(0.1, 6.0)]
                ),
                "b": BenefitFunction(
                    [BenefitPoint(0.0, 1.0), BenefitPoint(0.15, 4.0)]
                ),
            },
            "cloud": {
                "b": BenefitFunction(
                    [BenefitPoint(0.0, 1.0), BenefitPoint(0.3, 7.0)]
                ),
            },
        }
        decision = MultiServerDecisionManager("dp").decide(tasks, benefits)
        transports = {
            "edge": FixedLatencyTransport(sim, latency=0.05),
            "cloud": FixedLatencyTransport(sim, latency=0.2),
        }
        routing = RoutingTransport(decision.routes, transports)
        scheduler = OffloadingScheduler(
            sim, tasks, response_times=decision.response_times,
            transport=routing,
        )
        trace = scheduler.run(4.0)
        assert trace.all_deadlines_met
        offloaded = [r for r in trace.jobs.values() if r.offloaded]
        assert offloaded and all(r.result_returned for r in offloaded)

"""Unit + property tests for demand bound functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.dbf import (
    dbf_local_linear_bound,
    dbf_offloaded_linear_bound,
    dbf_offloaded_steps,
    dbf_sporadic,
    demand_checkpoints,
    processor_demand_test,
)
from repro.core.task import OffloadableTask, Task


def _offload_task(setup=0.02, comp=0.1, period=1.0):
    return OffloadableTask(
        task_id="o", wcet=comp, period=period,
        setup_time=setup, compensation_time=comp,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(0.3, 1.0)]
        ),
    )


class TestSporadicDbf:
    def test_zero_before_deadline(self):
        assert dbf_sporadic(1.0, 10.0, 5.0, 4.99) == 0.0

    def test_one_job_at_deadline(self):
        assert dbf_sporadic(1.0, 10.0, 5.0, 5.0) == 1.0

    def test_steps_at_period_boundaries(self):
        # D=5, T=10: jobs at t=5, 15, 25...
        assert dbf_sporadic(1.0, 10.0, 5.0, 14.99) == 1.0
        assert dbf_sporadic(1.0, 10.0, 5.0, 15.0) == 2.0
        assert dbf_sporadic(1.0, 10.0, 5.0, 25.0) == 3.0

    @given(
        wcet=st.floats(min_value=0.01, max_value=1.0),
        period=st.floats(min_value=0.5, max_value=10.0),
        t=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_linear_bound_dominates_exact(self, wcet, period, t):
        """Theorem 2's (C/T)·t upper-bounds the exact dbf (implicit D)."""
        if wcet > period:
            return
        exact = dbf_sporadic(wcet, period, period, t)
        assert exact <= (wcet / period) * t + 1e-9


class TestLinearBounds:
    def test_local_linear_bound_uses_density(self):
        task = Task("t", wcet=0.2, period=1.0, deadline=0.5)
        assert dbf_local_linear_bound(task, 2.0) == pytest.approx(0.8)

    def test_offloaded_linear_bound_matches_theorem1(self):
        task = _offload_task()
        t = 3.0
        expected = (0.02 + 0.1) / (1.0 - 0.3) * t
        assert dbf_offloaded_linear_bound(task, 0.3, t) == pytest.approx(
            expected
        )


class TestOffloadedSteps:
    def test_zero_for_tiny_windows(self):
        assert dbf_offloaded_steps(_offload_task(), 0.3, 0.01) == 0.0

    def test_step_dbf_can_exceed_the_line_at_small_windows(self):
        """Documented non-dominance: the independent-stream sum counts
        both sub-jobs of one job in windows too short to hold both, so
        it can exceed the Theorem 1 line (which is why the refined test
        takes the pointwise min of the two bounds)."""
        task = _offload_task()
        t = 0.625  # just above D2 = 0.5833 for these parameters
        steps = dbf_offloaded_steps(task, 0.3, t)
        line = dbf_offloaded_linear_bound(task, 0.3, t)
        assert steps > line

    @given(t=st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=80)
    def test_combined_bound_below_theorem1_line(self, t):
        """min(step bound, line) — what the refined test uses — never
        exceeds the paper's linear bound."""
        task = _offload_task()
        steps = dbf_offloaded_steps(task, 0.3, t)
        line = dbf_offloaded_linear_bound(task, 0.3, t)
        assert min(steps, line) <= line + 1e-9

    def test_asymptotic_slope_is_utilization_not_density(self):
        """Long-window growth is (C1+C2)/T — strictly below the Theorem 1
        line's (C1+C2)/(D−R) slope whenever R > 0.  This gap is exactly
        the pessimism the A3 ablation measures."""
        task = _offload_task()
        t = 50.0
        steps = dbf_offloaded_steps(task, 0.3, t)
        utilization_slope = (0.02 + 0.1) / task.period
        assert steps == pytest.approx(utilization_slope * t, rel=0.1)
        assert steps < dbf_offloaded_linear_bound(task, 0.3, t)


class TestCheckpoints:
    def test_enumerates_deadline_plus_periods(self):
        pts = demand_checkpoints([(0.5, 1.0)], horizon=2.6)
        assert pts == [0.5, 1.5, 2.5]

    def test_merges_streams_sorted(self):
        pts = demand_checkpoints([(0.5, 1.0), (0.7, 2.0)], horizon=2.0)
        assert pts == [0.5, 0.7, 1.5]


class TestProcessorDemandTest:
    def test_empty_is_feasible(self):
        assert processor_demand_test([]).feasible

    def test_single_feasible_stream(self):
        result = processor_demand_test([(0.5, 1.0, 1.0)])
        assert result.feasible
        assert result.margin >= 0

    def test_overloaded_stream_infeasible(self):
        # two streams each demanding 0.8 within deadline 1.0
        result = processor_demand_test(
            [(0.8, 1.0, 1.0), (0.8, 1.0, 1.0)]
        )
        assert not result.feasible
        assert result.critical_time == pytest.approx(1.0)
        assert result.demand == pytest.approx(1.6)

    def test_tight_but_feasible(self):
        result = processor_demand_test(
            [(0.5, 1.0, 1.0), (0.5, 1.0, 1.0)]
        )
        assert result.feasible
        assert result.margin == pytest.approx(0.0)

    def test_constrained_deadline_violation_detected(self):
        # U = 0.6 but both must finish within 0.3 -> infeasible
        result = processor_demand_test(
            [(0.3, 1.0, 0.3), (0.3, 1.0, 0.3)]
        )
        assert not result.feasible

    def test_invalid_stream_rejected(self):
        with pytest.raises(ValueError):
            processor_demand_test([(0.1, -1.0, 0.5)])

    def test_extra_demand_term(self):
        base = [(0.4, 1.0, 1.0)]
        assert processor_demand_test(base).feasible
        result = processor_demand_test(
            base, extra_demand=lambda t: 0.7 * t
        )
        assert not result.feasible

    @given(
        utilization=st.floats(min_value=0.05, max_value=0.95),
        n=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40)
    def test_implicit_deadline_streams_feasible_iff_u_le_1(
        self, utilization, n
    ):
        """For implicit-deadline streams EDF feasibility is U <= 1, and
        the demand test must agree."""
        per = utilization / n
        streams = [(per * 1.0, 1.0, 1.0) for _ in range(n)]
        assert processor_demand_test(streams).feasible

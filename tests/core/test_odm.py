"""Unit tests for the Offloading Decision Manager and its MCKP reduction."""

import numpy as np
import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.odm import OffloadingDecisionManager, build_mckp
from repro.core.schedulability import theorem3_test
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.workloads.generator import paper_simulation_task_set


class TestBuildMckp:
    def test_one_class_per_task_capacity_one(self, small_task_set):
        instance = build_mckp(small_task_set)
        assert instance.num_classes == 2
        assert instance.capacity == 1.0
        assert {c.class_id for c in instance.classes} == {"off1", "loc1"}

    def test_local_item_always_first(self, small_task_set):
        instance = build_mckp(small_task_set)
        for cls in instance.classes:
            assert cls.items[0].tag == 0.0

    def test_local_item_weight_is_utilization(self, small_task_set):
        instance = build_mckp(small_task_set)
        cls = instance.class_by_id("off1")
        task = small_task_set["off1"]
        assert cls.items[0].weight == pytest.approx(task.utilization)
        assert cls.items[0].value == pytest.approx(
            task.benefit.local_benefit * task.weight
        )

    def test_offload_item_weight_matches_paper(self, small_task_set):
        instance = build_mckp(small_task_set)
        cls = instance.class_by_id("off1")
        task = small_task_set["off1"]
        for item in cls.items[1:]:
            r = item.tag
            expected = (task.setup_time + task.compensation_time) / (
                task.deadline - r
            )
            assert item.weight == pytest.approx(expected)

    def test_plain_task_gets_single_zero_value_item(self, small_task_set):
        cls = build_mckp(small_task_set).class_by_id("loc1")
        assert len(cls.items) == 1
        assert cls.items[0].value == 0.0

    def test_infeasible_points_filtered(self):
        """Points with r >= D or C1+C2 > D-r can never be selected."""
        benefit = BenefitFunction(
            [
                BenefitPoint(0.0, 0.0),
                BenefitPoint(0.5, 1.0),  # feasible
                BenefitPoint(0.95, 2.0),  # C1+C2=0.12 > 1-0.95
                BenefitPoint(1.5, 3.0),  # r >= D
            ]
        )
        task = OffloadableTask(
            task_id="o", wcet=0.1, period=1.0,
            setup_time=0.02, compensation_time=0.1, benefit=benefit,
        )
        cls = build_mckp(TaskSet([task])).class_by_id("o")
        assert [item.tag for item in cls.items] == [0.0, 0.5]

    def test_weight_scales_values_not_weights(self):
        benefit = BenefitFunction(
            [BenefitPoint(0.0, 1.0), BenefitPoint(0.3, 2.0)]
        )
        task = OffloadableTask(
            task_id="o", wcet=0.1, period=1.0, weight=3.0,
            setup_time=0.02, compensation_time=0.1, benefit=benefit,
        )
        cls = build_mckp(TaskSet([task])).class_by_id("o")
        assert cls.items[0].value == pytest.approx(3.0)
        assert cls.items[1].value == pytest.approx(6.0)
        assert cls.items[1].weight == pytest.approx(0.12 / 0.7)

    def test_level_overrides_in_weights(self):
        benefit = BenefitFunction(
            [
                BenefitPoint(0.0, 0.0),
                BenefitPoint(0.3, 1.0, setup_time=0.05,
                             compensation_time=0.25),
            ]
        )
        task = OffloadableTask(
            task_id="o", wcet=0.1, period=1.0,
            setup_time=0.02, compensation_time=0.1, benefit=benefit,
        )
        cls = build_mckp(TaskSet([task])).class_by_id("o")
        assert cls.items[1].weight == pytest.approx((0.05 + 0.25) / 0.7)


class TestDecisionManager:
    @pytest.mark.parametrize("solver", ["dp", "heu_oe", "branch_bound",
                                        "brute_force"])
    def test_every_solver_produces_feasible_decision(
        self, small_task_set, solver
    ):
        decision = OffloadingDecisionManager(solver=solver).decide(
            small_task_set
        )
        assert decision.schedulability.feasible
        check = theorem3_test(small_task_set, decision.assignments())
        assert check.feasible

    def test_decision_beats_or_matches_all_local(self, small_task_set):
        decision = OffloadingDecisionManager("dp").decide(small_task_set)
        all_local = sum(
            t.benefit.local_benefit * t.weight
            for t in small_task_set.offloadable_tasks
        )
        assert decision.expected_benefit >= all_local - 1e-9

    def test_offloads_when_budget_allows(self, small_task_set):
        """With U=0.2 total there is plenty of budget: the single
        offloadable task must be offloaded at its best feasible point."""
        decision = OffloadingDecisionManager("dp").decide(small_task_set)
        assert decision.response_time_of("off1") == pytest.approx(0.30)
        assert decision.response_time_of("loc1") == 0.0
        assert decision.offloaded_task_ids == ("off1",)
        assert decision.local_task_ids == ("loc1",)

    def test_stays_local_when_budget_tight(self, offload_task):
        tasks = TaskSet([offload_task, Task("hog", 0.88, 1.0)])
        decision = OffloadingDecisionManager("dp").decide(tasks)
        # offloading off1 at any point costs >= 0.12/0.9 = 0.133;
        # 0.88 + 0.133 > 1, so only local (0.1) fits
        assert decision.response_time_of("off1") == 0.0

    def test_rejects_overutilized_baseline(self):
        tasks = TaskSet([Task("a", 0.7, 1.0), Task("b", 0.5, 1.0)])
        with pytest.raises(ValueError, match="exceeds 1"):
            OffloadingDecisionManager("dp").decide(tasks)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            OffloadingDecisionManager("nope")

    def test_custom_callable_solver(self, small_task_set):
        from repro.knapsack import solve_heu_oe

        decision = OffloadingDecisionManager(solver=solve_heu_oe).decide(
            small_task_set
        )
        assert decision.solver == "solve_heu_oe"
        assert decision.schedulability.feasible

    def test_dp_matches_brute_force_on_paper_workload(self):
        rng = np.random.default_rng(3)
        tasks = paper_simulation_task_set(rng, num_tasks=5)
        dp = OffloadingDecisionManager("dp").decide(tasks)
        exact = OffloadingDecisionManager("brute_force").decide(tasks)
        assert dp.expected_benefit == pytest.approx(
            exact.expected_benefit, rel=1e-3
        )

    def test_decision_reproducible(self, small_task_set):
        d1 = OffloadingDecisionManager("dp").decide(small_task_set)
        d2 = OffloadingDecisionManager("dp").decide(small_task_set)
        assert dict(d1.response_times) == dict(d2.response_times)

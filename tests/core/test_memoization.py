"""Memoization of the schedulability hot paths (QPA / demand-bound).

The runtime loops ask the same feasibility question about unchanged
stream sets every window; the caches must answer those repeats without
recomputation while never changing any answer.
"""

import pytest

from repro.core.dbf import (
    clear_demand_cache,
    processor_demand_test,
)
from repro.core.qpa import clear_qpa_cache, qpa_test

STREAMS = [(0.2, 1.0, 0.8), (0.1, 2.0, 1.5), (0.3, 5.0, 4.0)]
INFEASIBLE = [(0.9, 1.0, 0.9), (0.5, 1.0, 0.9)]


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_demand_cache()
    clear_qpa_cache()
    yield
    clear_demand_cache()
    clear_qpa_cache()


class TestDemandCache:
    def test_repeat_call_returns_cached_object(self):
        first = processor_demand_test(STREAMS)
        second = processor_demand_test(STREAMS)
        assert second is first  # same frozen result object = cache hit

    def test_clear_forces_recomputation(self):
        first = processor_demand_test(STREAMS)
        clear_demand_cache()
        second = processor_demand_test(STREAMS)
        assert second is not first
        assert second == first

    def test_horizon_is_part_of_the_key(self):
        default = processor_demand_test(STREAMS)
        bounded = processor_demand_test(STREAMS, horizon=2.0)
        assert bounded is not default

    def test_extra_demand_bypasses_cache(self):
        plain = processor_demand_test(STREAMS)
        with_extra = processor_demand_test(
            STREAMS, extra_demand=lambda t: 0.05 * t
        )
        # the extra-demand result is not cached in either direction
        assert with_extra is not plain
        assert processor_demand_test(STREAMS) is plain

    def test_infeasible_results_cached_too(self):
        first = processor_demand_test(INFEASIBLE)
        assert not first.feasible
        assert processor_demand_test(INFEASIBLE) is first

    def test_streams_accepts_any_iterable(self):
        as_gen = processor_demand_test(tuple(STREAMS))
        as_list = processor_demand_test(STREAMS)
        assert as_gen is as_list


class TestQPACache:
    def test_repeat_call_returns_cached_object(self):
        first = qpa_test(STREAMS)
        assert qpa_test(STREAMS) is first

    def test_clear_forces_recomputation(self):
        first = qpa_test(STREAMS)
        clear_qpa_cache()
        second = qpa_test(STREAMS)
        assert second is not first
        assert second == first

    def test_invalid_streams_raise_and_are_not_cached(self):
        with pytest.raises(ValueError):
            qpa_test([(0.1, -1.0, 1.0)])
        with pytest.raises(ValueError):
            qpa_test([(0.1, -1.0, 1.0)])

    def test_agrees_with_demand_test_through_caches(self):
        assert qpa_test(STREAMS).feasible == processor_demand_test(
            STREAMS
        ).feasible
        assert qpa_test(INFEASIBLE).feasible == processor_demand_test(
            INFEASIBLE
        ).feasible

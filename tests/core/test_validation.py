"""Input-validation hardening: malformed inputs fail loudly at the
constructor / ODM boundary, not deep inside the DP or the scheduler."""

import math

import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.odm import OffloadingDecisionManager
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import NeverRespondsTransport
from repro.sim.engine import Simulator


class TestTaskValidation:
    def test_negative_wcet_rejected(self):
        with pytest.raises(ValueError, match="wcet"):
            Task("t", wcet=-0.1, period=1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_wcet_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            Task("t", wcet=bad, period=1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_period_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            Task("t", wcet=0.1, period=bad)

    def test_nan_deadline_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Task("t", wcet=0.1, period=1.0, deadline=float("nan"))

    def test_nan_weight_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Task("t", wcet=0.1, period=1.0, weight=float("nan"))


class TestOffloadableTaskValidation:
    def test_nan_setup_time_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            OffloadableTask(
                "t", wcet=0.1, period=1.0,
                setup_time=float("nan"), compensation_time=0.1,
            )

    def test_inf_compensation_time_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            OffloadableTask(
                "t", wcet=0.1, period=1.0,
                setup_time=0.02, compensation_time=float("inf"),
            )

    def test_nan_server_bound_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            OffloadableTask(
                "t", wcet=0.1, period=1.0,
                setup_time=0.02, compensation_time=0.1,
                server_response_bound=float("nan"),
            )


class TestBenefitValidation:
    def test_non_monotone_points_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            BenefitFunction(
                [
                    BenefitPoint(0.0, 5.0),
                    BenefitPoint(0.1, 3.0),
                ]
            )

    def test_nan_benefit_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            BenefitPoint(0.1, float("nan"))

    def test_inf_response_time_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            BenefitPoint(float("inf"), 1.0)


class TestTaskSetValidation:
    def test_non_task_rejected(self):
        with pytest.raises(TypeError, match="Task"):
            TaskSet(["not a task"])

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet([Task("t", 0.1, 1.0), Task("t", 0.2, 1.0)])


class TestOdmValidation:
    def test_empty_task_set_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            OffloadingDecisionManager().decide(TaskSet())


class TestSchedulerValidation:
    def _task(self):
        return OffloadableTask(
            "o", wcet=0.2, period=1.0,
            setup_time=0.05, compensation_time=0.2,
            benefit=BenefitFunction(
                [BenefitPoint(0.0, 1.0), BenefitPoint(0.5, 2.0)]
            ),
        )

    def test_response_time_at_deadline_rejected(self):
        tasks = TaskSet([self._task()])
        with pytest.raises(ValueError, match="R_i"):
            OffloadingScheduler(
                Simulator(), tasks, response_times={"o": 1.0},
                transport=NeverRespondsTransport(),
            )

    def test_response_time_beyond_deadline_rejected(self):
        tasks = TaskSet([self._task()])
        with pytest.raises(ValueError, match="R_i"):
            OffloadingScheduler(
                Simulator(), tasks, response_times={"o": 2.5},
                transport=NeverRespondsTransport(),
            )

    def test_nan_response_time_rejected(self):
        tasks = TaskSet([self._task()])
        with pytest.raises(ValueError, match="non-finite"):
            OffloadingScheduler(
                Simulator(), tasks,
                response_times={"o": math.nan},
                transport=NeverRespondsTransport(),
            )

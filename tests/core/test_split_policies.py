"""Tests for the alternative deadline-split policies (A4 substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.deadlines import SPLIT_POLICIES, split_deadlines
from repro.core.task import OffloadableTask
from repro.experiments.split_policies import run_split_policy_ablation


def _task(setup=0.02, comp=0.1):
    return OffloadableTask(
        task_id="o", wcet=comp, period=1.0,
        setup_time=setup, compensation_time=comp,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(0.3, 1.0)]
        ),
    )


class TestPolicies:
    def test_all_policies_registered(self):
        assert set(SPLIT_POLICIES) == {
            "proportional", "equal_slack", "setup_minimal", "sqrt",
        }

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown split policy"):
            split_deadlines(_task(), 0.3, policy="random")

    def test_proportional_is_default(self):
        a = split_deadlines(_task(), 0.3)
        b = split_deadlines(_task(), 0.3, policy="proportional")
        assert a == b

    def test_equal_slack_halves_the_window(self):
        split = split_deadlines(_task(), 0.3, policy="equal_slack")
        assert split.setup_deadline == pytest.approx(0.35)

    def test_setup_minimal_gives_setup_its_wcet(self):
        split = split_deadlines(_task(), 0.3, policy="setup_minimal")
        assert split.setup_deadline == pytest.approx(0.02)
        assert split.compensation_budget == pytest.approx(0.68)

    def test_sqrt_minimizes_density_sum(self):
        """The sqrt rule's density sum must not exceed any other
        policy's."""
        task = _task(setup=0.03, comp=0.12)

        def density_sum(policy):
            s = split_deadlines(task, 0.3, policy=policy)
            return (
                s.setup_wcet / s.setup_deadline
                + s.compensation_wcet / s.compensation_budget
            )

        sqrt_sum = density_sum("sqrt")
        for policy in SPLIT_POLICIES:
            assert sqrt_sum <= density_sum(policy) + 1e-9

    @pytest.mark.parametrize("policy", sorted(SPLIT_POLICIES))
    def test_every_policy_produces_feasible_budgets(self, policy):
        split = split_deadlines(_task(), 0.3, policy=policy)
        assert split.setup_wcet <= split.setup_deadline + 1e-12
        assert (
            split.compensation_wcet <= split.compensation_budget + 1e-12
        )
        total = (
            split.setup_deadline
            + split.response_budget
            + split.compensation_budget
        )
        assert total == pytest.approx(1.0)


@given(
    setup=st.floats(min_value=0.005, max_value=0.15),
    comp=st.floats(min_value=0.01, max_value=0.3),
    policy=st.sampled_from(sorted(SPLIT_POLICIES)),
)
@settings(max_examples=80)
def test_policies_always_fit_in_isolation(setup, comp, policy):
    if setup + comp > 0.7:  # slack at r=0.3, D=1
        return
    task = _task(setup=setup, comp=comp)
    split = split_deadlines(task, 0.3, policy=policy)
    assert split.setup_wcet <= split.setup_deadline + 1e-9
    assert split.compensation_wcet <= split.compensation_budget + 1e-9


class TestAblationDriver:
    def test_proportional_dominates_and_all_sound(self):
        result = run_split_policy_ablation(
            num_configurations=12, seed=1, validate_with_des=True
        )
        assert result.configurations > 0
        prop = result.accepts["proportional"]
        assert prop >= result.accepts["equal_slack"]
        assert prop >= result.accepts["setup_minimal"]
        for policy, count in result.unsound.items():
            assert count == 0, f"{policy} accepted an unschedulable config"

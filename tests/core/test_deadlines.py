"""Unit + property tests for the §5.1 deadline split."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.deadlines import split_deadlines
from repro.core.task import OffloadableTask


def _task(wcet=0.1, period=1.0, setup=0.02, comp=0.1, points=None):
    benefit = BenefitFunction(
        points
        if points is not None
        else [BenefitPoint(0.0, 0.0), BenefitPoint(0.3, 1.0)]
    )
    return OffloadableTask(
        task_id="o", wcet=wcet, period=period,
        setup_time=setup, compensation_time=comp, benefit=benefit,
    )


class TestFormula:
    def test_paper_formula(self):
        """D_{i,1} = C1 (D - R) / (C1 + C2)."""
        split = split_deadlines(_task(), response_time=0.3)
        expected = 0.02 * (1.0 - 0.3) / (0.02 + 0.1)
        assert split.setup_deadline == pytest.approx(expected)

    def test_budgets_partition_the_deadline(self):
        split = split_deadlines(_task(), response_time=0.3)
        total = (
            split.setup_deadline
            + split.response_budget
            + split.compensation_budget
        )
        assert total == pytest.approx(split.total_deadline)

    def test_densities_equal_for_both_subjobs(self):
        """The proportional split equalizes sub-job densities at
        (C1+C2)/(D-R) — the Theorem 3 per-task term."""
        split = split_deadlines(_task(), response_time=0.3)
        setup_density = split.setup_wcet / split.setup_deadline
        comp_density = split.compensation_wcet / split.compensation_budget
        assert setup_density == pytest.approx(comp_density)
        assert setup_density == pytest.approx(split.density)
        assert split.density == pytest.approx((0.02 + 0.1) / (1.0 - 0.3))

    def test_latest_compensation_release(self):
        split = split_deadlines(_task(), response_time=0.3)
        assert split.latest_compensation_release == pytest.approx(
            split.setup_deadline + 0.3
        )


class TestValidation:
    def test_zero_response_time_rejected(self):
        with pytest.raises(ValueError, match="positive R_i"):
            split_deadlines(_task(), response_time=0.0)

    def test_response_time_at_deadline_rejected(self):
        with pytest.raises(ValueError, match="no time remains"):
            split_deadlines(_task(), response_time=1.0)

    def test_budget_overflow_rejected(self):
        """C1 + C2 > D - R has no feasible split."""
        task = _task(setup=0.4, comp=0.5)
        with pytest.raises(ValueError, match="infeasible"):
            split_deadlines(task, response_time=0.2)


class TestPerLevelParameters:
    def test_level_overrides_used(self):
        points = [
            BenefitPoint(0.0, 0.0),
            BenefitPoint(0.3, 1.0, setup_time=0.05,
                         compensation_time=0.2),
        ]
        split = split_deadlines(_task(points=points), response_time=0.3)
        assert split.setup_wcet == 0.05
        assert split.compensation_wcet == 0.2

    def test_non_point_response_time_uses_defaults(self):
        split = split_deadlines(_task(), response_time=0.25)
        assert split.setup_wcet == 0.02
        assert split.compensation_wcet == 0.1


@given(
    setup=st.floats(min_value=0.001, max_value=0.2),
    comp=st.floats(min_value=0.001, max_value=0.3),
    response=st.floats(min_value=0.01, max_value=0.4),
)
@settings(max_examples=80)
def test_split_properties_hold_generally(setup, comp, response):
    """For any feasible parameters: positive budgets, exact partition,
    equal densities."""
    deadline = 1.0
    if setup + comp > deadline - response:
        return  # infeasible by construction; covered by validation tests
    task = _task(setup=setup, comp=comp)
    split = split_deadlines(task, response_time=response)
    assert split.setup_deadline > 0
    assert split.compensation_budget > 0
    assert (
        split.setup_deadline + split.response_budget
        + split.compensation_budget
    ) == pytest.approx(deadline)
    assert split.setup_wcet / split.setup_deadline == pytest.approx(
        split.compensation_wcet / split.compensation_budget
    )
    # each sub-job fits its own budget in isolation
    assert split.setup_wcet <= split.setup_deadline + 1e-12
    assert split.compensation_wcet <= split.compensation_budget + 1e-12

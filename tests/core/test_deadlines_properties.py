"""Property-based verification of the §5.1 deadline-split formula.

The paper's proportional rule::

    D_{i,1} = C_{i,1} · (D_i − R_i) / (C_{i,1} + C_{i,2})

is load-bearing: the scheduler releases sub-jobs by it and Theorem 3 is
tight exactly because it equalizes the two sub-job densities.  These
Hypothesis properties pin its whole envelope — range, monotonicity in
``R_i``, density equalization, and the degenerate corners (``C_{i,2} →
0`` via the §3 guaranteed-result extension, ``R_i → D_i`` at the
structural feasibility boundary) where naive implementations go
negative or NaN.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.deadlines import SPLIT_POLICIES, split_deadlines
from repro.core.task import OffloadableTask

proportional = SPLIT_POLICIES["proportional"]

positive = st.floats(
    min_value=1e-6, max_value=1e3,
    allow_nan=False, allow_infinity=False,
)


def make_task(deadline, setup, comp, response_time, bound=None):
    return OffloadableTask(
        task_id="t",
        wcet=min(setup + comp, deadline) / 2.0,
        period=deadline,
        deadline=deadline,
        setup_time=setup,
        compensation_time=comp,
        post_time=0.0,
        server_response_bound=bound,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(response_time, 1.0)]
        ),
    )


@given(setup=positive, comp=positive, slack=positive)
def test_raw_formula_range_and_finiteness(setup, comp, slack):
    """``0 < D1 < slack`` whenever both WCETs are positive."""
    d1 = proportional(setup, comp, slack)
    assert math.isfinite(d1)
    assert 0.0 < d1 < slack


@given(setup=positive, slack=positive)
def test_raw_formula_degenerate_no_second_phase(setup, slack):
    """``C2 = 0`` collapses to ``D1 = slack`` — never negative or NaN."""
    d1 = proportional(setup, 0.0, slack)
    assert math.isfinite(d1)
    assert d1 > 0.0
    assert math.isclose(d1, slack, rel_tol=1e-12)


@given(
    deadline=st.floats(min_value=0.1, max_value=100.0),
    setup_frac=st.floats(min_value=0.01, max_value=0.45),
    comp_frac=st.floats(min_value=0.01, max_value=0.45),
    r_frac=st.floats(min_value=0.01, max_value=0.9),
)
@settings(max_examples=200)
def test_split_range_density_and_budgets(
    deadline, setup_frac, comp_frac, r_frac
):
    """End-to-end split: range, equal densities, budget accounting."""
    response_time = r_frac * deadline
    slack = deadline - response_time
    setup = setup_frac * slack
    comp = comp_frac * slack
    assume(setup > 1e-9 and comp > 1e-9)
    task = make_task(deadline, setup, comp, response_time)

    split = split_deadlines(task, response_time)
    d1 = split.setup_deadline
    assert math.isfinite(d1)
    assert 0.0 < d1 < slack
    # both sub-jobs fit their own budgets in isolation
    assert setup <= d1 + 1e-9
    assert comp <= split.compensation_budget + 1e-9
    # the budgets partition the slack exactly
    assert math.isclose(
        d1 + split.compensation_budget, slack, rel_tol=1e-9
    )
    # equal densities: D1 / slack == C1 / (C1 + C2)
    assert math.isclose(
        d1 / slack, setup / (setup + comp), rel_tol=1e-9
    )
    assert math.isclose(
        split.density, (setup + comp) / slack, rel_tol=1e-9
    )


@given(
    deadline=st.floats(min_value=0.1, max_value=100.0),
    setup_frac=st.floats(min_value=0.01, max_value=0.2),
    comp_frac=st.floats(min_value=0.01, max_value=0.2),
    r_lo=st.floats(min_value=0.05, max_value=0.5),
    r_hi=st.floats(min_value=0.05, max_value=0.5),
)
@settings(max_examples=200)
def test_setup_deadline_monotone_decreasing_in_response_time(
    deadline, setup_frac, comp_frac, r_lo, r_hi
):
    """Larger ``R_i`` → smaller slack → strictly smaller ``D_{i,1}``."""
    lo, hi = sorted((r_lo, r_hi))
    assume(hi - lo > 1e-6)
    r1, r2 = lo * deadline, hi * deadline
    tight_slack = deadline - r2
    setup = setup_frac * tight_slack
    comp = comp_frac * tight_slack
    assume(setup > 1e-9 and comp > 1e-9)

    d1_lo = split_deadlines(
        make_task(deadline, setup, comp, r1), r1
    ).setup_deadline
    d1_hi = split_deadlines(
        make_task(deadline, setup, comp, r2), r2
    ).setup_deadline
    assert d1_hi < d1_lo


@given(
    deadline=st.floats(min_value=0.1, max_value=100.0),
    setup_frac=st.floats(min_value=0.01, max_value=0.45),
    comp_frac=st.floats(min_value=0.01, max_value=0.45),
)
@settings(max_examples=200)
def test_response_time_at_feasibility_boundary(
    deadline, setup_frac, comp_frac
):
    """``R_i → D_i``: at ``slack = C1 + C2`` exactly, the split still
    yields non-negative finite budgets (``D1 = C1``)."""
    setup = setup_frac * deadline / 4.0
    comp = comp_frac * deadline / 4.0
    assume(setup > 1e-9 and comp > 1e-9)
    response_time = deadline - (setup + comp)
    assume(response_time > 1e-9)
    split = split_deadlines(
        make_task(deadline, setup, comp, response_time), response_time
    )
    assert math.isfinite(split.setup_deadline)
    assert split.setup_deadline >= 0.0
    assert split.compensation_budget >= comp - 1e-9
    assert math.isclose(split.setup_deadline, setup, rel_tol=1e-6)


@given(
    deadline=st.floats(min_value=0.1, max_value=100.0),
    setup_frac=st.floats(min_value=0.01, max_value=0.4),
    r_frac=st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=200)
def test_guaranteed_result_collapses_second_phase(
    deadline, setup_frac, r_frac
):
    """§3 extension with ``C_{i,3} = 0``: the compensation phase
    vanishes (``C2 → 0``) and the setup sub-job gets the whole slack —
    finite, never negative."""
    response_time = r_frac * deadline
    slack = deadline - response_time
    setup = setup_frac * slack
    assume(setup > 1e-9)
    task = make_task(
        deadline, setup, slack * 0.5 + 1e-6, response_time,
        bound=response_time,  # R_i meets the bound → result guaranteed
    )
    split = split_deadlines(task, response_time)
    assert split.compensation_wcet == 0.0
    assert math.isfinite(split.setup_deadline)
    assert math.isclose(split.setup_deadline, slack, rel_tol=1e-9)
    assert split.compensation_budget >= -1e-12

"""Unit tests for the Theorem 3 test and the exact demand refinement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.schedulability import (
    OffloadAssignment,
    exact_demand_test,
    local_edf_test,
    theorem3_test,
)
from repro.core.task import OffloadableTask, Task, TaskSet


def _offloadable(task_id="o", wcet=0.1, period=1.0, setup=0.02, comp=0.1,
                 r=0.3):
    return OffloadableTask(
        task_id=task_id, wcet=wcet, period=period,
        setup_time=setup, compensation_time=comp,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 0.0), BenefitPoint(r, 1.0)]
        ),
    )


class TestOffloadAssignment:
    def test_requires_positive_response_time(self):
        with pytest.raises(ValueError):
            OffloadAssignment("t", 0.0)


class TestTheorem3:
    def test_all_local_equals_utilization(self):
        tasks = TaskSet([Task("a", 0.2, 1.0), Task("b", 0.3, 1.0)])
        result = theorem3_test(tasks)
        assert result.feasible
        assert result.total_demand_rate == pytest.approx(0.5)
        assert result.contributions["a"] == pytest.approx(0.2)
        assert result.slack == pytest.approx(0.5)

    def test_offloaded_term_matches_paper(self):
        task = _offloadable()
        tasks = TaskSet([task])
        result = theorem3_test(tasks, [OffloadAssignment("o", 0.3)])
        expected = (0.02 + 0.1) / (1.0 - 0.3)
        assert result.total_demand_rate == pytest.approx(expected)

    def test_mixed_partition(self):
        tasks = TaskSet([_offloadable(), Task("l", 0.4, 1.0)])
        result = theorem3_test(tasks, [OffloadAssignment("o", 0.3)])
        expected = (0.02 + 0.1) / 0.7 + 0.4
        assert result.total_demand_rate == pytest.approx(expected)
        assert result.feasible

    def test_infeasible_when_budget_exceeded(self):
        tasks = TaskSet(
            [_offloadable("o1"), _offloadable("o2"), Task("l", 0.9, 1.0)]
        )
        result = theorem3_test(
            tasks,
            [OffloadAssignment("o1", 0.3), OffloadAssignment("o2", 0.3)],
        )
        assert not result.feasible
        assert not bool(result)

    def test_structurally_infeasible_assignment_reports_inf(self):
        task = _offloadable(r=0.95)
        tasks = TaskSet([task])
        result = theorem3_test(tasks, [OffloadAssignment("o", 1.0)])
        assert not result.feasible
        assert result.total_demand_rate == float("inf")

    def test_unknown_assignment_rejected(self):
        tasks = TaskSet([Task("a", 0.1, 1.0)])
        with pytest.raises(ValueError, match="not offloadable"):
            theorem3_test(tasks, [OffloadAssignment("a", 0.3)])
        with pytest.raises(ValueError, match="unknown"):
            theorem3_test(tasks, [OffloadAssignment("zzz", 0.3)])

    def test_duplicate_assignment_rejected(self):
        tasks = TaskSet([_offloadable()])
        with pytest.raises(ValueError, match="duplicate"):
            theorem3_test(
                tasks,
                [OffloadAssignment("o", 0.3), OffloadAssignment("o", 0.3)],
            )

    def test_per_level_overrides_respected(self):
        benefit = BenefitFunction(
            [
                BenefitPoint(0.0, 0.0),
                BenefitPoint(0.3, 1.0, setup_time=0.05,
                             compensation_time=0.2),
            ]
        )
        task = OffloadableTask(
            task_id="o", wcet=0.1, period=1.0,
            setup_time=0.02, compensation_time=0.1, benefit=benefit,
        )
        result = theorem3_test(
            TaskSet([task]), [OffloadAssignment("o", 0.3)]
        )
        assert result.total_demand_rate == pytest.approx(
            (0.05 + 0.2) / 0.7
        )


class TestExactDemandTest:
    def test_feasible_configuration(self):
        tasks = TaskSet([_offloadable(), Task("l", 0.4, 1.0)])
        result = exact_demand_test(tasks, [OffloadAssignment("o", 0.3)])
        assert result.feasible

    def test_dominates_theorem3(self):
        """Whenever Theorem 3 accepts, the exact test must accept too."""
        for comp in (0.05, 0.1, 0.2, 0.3):
            task = _offloadable(comp=comp, wcet=comp)
            tasks = TaskSet([task, Task("l", 0.3, 1.0)])
            assignments = [OffloadAssignment("o", 0.3)]
            if theorem3_test(tasks, assignments).feasible:
                assert exact_demand_test(tasks, assignments).feasible

    def test_accepts_some_theorem3_rejections(self):
        """The step dbf is strictly tighter: find a configuration the
        linear bound rejects but exact analysis accepts."""
        # Offloaded task with large density (big R_i eats the deadline)
        # but small utilization: the linear bound charges density*t
        # everywhere, the step dbf only at its (rare) deadlines.
        task = _offloadable(wcet=0.4, comp=0.4, setup=0.02, period=2.0,
                            r=1.3)
        tasks = TaskSet([task, Task("l", 0.45, 1.0)])
        assignments = [OffloadAssignment("o", 1.3)]
        t3 = theorem3_test(tasks, assignments)
        exact = exact_demand_test(tasks, assignments)
        assert not t3.feasible
        assert exact.feasible


class TestLocalEdfTest:
    def test_matches_utilization_condition(self):
        ok = TaskSet([Task("a", 0.5, 1.0), Task("b", 0.5, 1.0)])
        assert local_edf_test(ok).feasible
        over = TaskSet([Task("a", 0.6, 1.0), Task("b", 0.5, 1.0)])
        assert not local_edf_test(over).feasible


@given(
    setup=st.floats(min_value=0.01, max_value=0.1),
    comp=st.floats(min_value=0.05, max_value=0.3),
    r=st.floats(min_value=0.05, max_value=0.5),
    local_u=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=60)
def test_theorem3_is_sum_of_contributions(setup, comp, r, local_u):
    tasks = TaskSet(
        [
            OffloadableTask(
                task_id="o", wcet=comp, period=1.0,
                setup_time=setup, compensation_time=comp,
                benefit=BenefitFunction(
                    [BenefitPoint(0.0, 0.0), BenefitPoint(r, 1.0)]
                ),
            ),
        ]
    )
    if local_u > 0:
        tasks.add(Task("l", local_u, 1.0))
    result = theorem3_test(tasks, [OffloadAssignment("o", r)])
    assert result.total_demand_rate == pytest.approx(
        sum(result.contributions.values())
    )

"""QPA tests: agreement with the forward demand scan, and efficiency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbf import processor_demand_test
from repro.core.qpa import qpa_test


class TestKnownCases:
    def test_empty_feasible(self):
        assert qpa_test([]).feasible

    def test_single_feasible_stream(self):
        assert qpa_test([(0.5, 1.0, 1.0)]).feasible

    def test_overload_detected(self):
        result = qpa_test([(0.8, 1.0, 1.0), (0.8, 1.0, 1.0)])
        assert not result.feasible
        assert result.demand > result.critical_time

    def test_tight_boundary_feasible(self):
        assert qpa_test([(0.5, 1.0, 1.0), (0.5, 1.0, 1.0)]).feasible

    def test_constrained_deadline_violation(self):
        result = qpa_test([(0.3, 1.0, 0.3), (0.3, 1.0, 0.3)])
        assert not result.feasible
        assert result.critical_time == pytest.approx(0.3)

    def test_zero_wcet_streams_ignored(self):
        assert qpa_test([(0.0, 1.0, 0.5)]).feasible

    def test_invalid_stream_rejected(self):
        with pytest.raises(ValueError):
            qpa_test([(0.1, 0.0, 0.5)])


class TestAgreementWithForwardScan:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_streams_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        streams = []
        for _ in range(n):
            period = float(rng.uniform(0.2, 2.0))
            deadline = float(rng.uniform(0.3, 1.0)) * period
            wcet = float(rng.uniform(0.05, 0.9)) * deadline
            streams.append((wcet, period, deadline))
        forward = processor_demand_test(streams)
        qpa = qpa_test(streams)
        assert forward.feasible == qpa.feasible, (
            f"disagreement on {streams}: forward={forward}, qpa={qpa}"
        )

    def test_qpa_visits_fewer_points_on_long_busy_periods(self):
        """QPA's jump step skips flat dbf regions the forward scan
        visits one by one (same horizon for a fair count)."""
        streams = [
            (0.14, 0.4, 0.4),
            (0.18, 0.7, 0.7),
            (0.22, 1.1, 1.1),
            (0.15, 1.3, 1.3),
        ]
        horizon = 40.0
        forward = processor_demand_test(streams, horizon=horizon)
        qpa = qpa_test(streams, horizon=horizon)
        assert forward.feasible and qpa.feasible
        assert qpa.checkpoints_tested < forward.checkpoints_tested


@given(
    n=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_qpa_agrees_property(n, seed):
    rng = np.random.default_rng(seed)
    streams = []
    for _ in range(n):
        period = float(rng.uniform(0.1, 3.0))
        deadline = float(rng.uniform(0.2, 1.0)) * period
        wcet = float(rng.uniform(0.01, 1.0)) * deadline
        streams.append((wcet, period, deadline))
    assert (
        qpa_test(streams).feasible
        == processor_demand_test(streams).feasible
    )

"""Unit + property tests for benefit functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint


class TestBenefitPoint:
    def test_negative_response_time_rejected(self):
        with pytest.raises(ValueError):
            BenefitPoint(-0.1, 1.0)

    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError):
            BenefitPoint(0.1, 1.0, setup_time=-0.01)

    def test_negative_compensation_rejected(self):
        with pytest.raises(ValueError):
            BenefitPoint(0.1, 1.0, compensation_time=-0.01)

    def test_is_local(self):
        assert BenefitPoint(0.0, 1.0).is_local
        assert not BenefitPoint(0.1, 1.0).is_local


class TestConstruction:
    def test_requires_at_least_one_point(self):
        with pytest.raises(ValueError):
            BenefitFunction([])

    def test_requires_local_point(self):
        with pytest.raises(ValueError, match="r=0"):
            BenefitFunction([BenefitPoint(0.1, 1.0)])

    def test_rejects_decreasing_benefit(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            BenefitFunction(
                [BenefitPoint(0.0, 2.0), BenefitPoint(0.1, 1.0)]
            )

    def test_rejects_duplicate_response_times(self):
        with pytest.raises(ValueError, match="duplicate"):
            BenefitFunction(
                [
                    BenefitPoint(0.0, 1.0),
                    BenefitPoint(0.1, 2.0),
                    BenefitPoint(0.1, 3.0),
                ]
            )

    def test_points_sorted_regardless_of_input_order(self):
        fn = BenefitFunction(
            [
                BenefitPoint(0.2, 3.0),
                BenefitPoint(0.0, 1.0),
                BenefitPoint(0.1, 2.0),
            ]
        )
        assert fn.response_times == (0.0, 0.1, 0.2)

    def test_equal_benefits_allowed(self):
        fn = BenefitFunction(
            [BenefitPoint(0.0, 1.0), BenefitPoint(0.1, 1.0)]
        )
        assert fn.num_points == 2

    def test_from_pairs_inserts_local_point(self):
        fn = BenefitFunction.from_pairs([(0.1, 2.0)], local_benefit=0.5)
        assert fn.local_benefit == 0.5
        assert fn.num_points == 2


class TestEvaluation:
    def test_value_is_step_function(self, simple_benefit):
        assert simple_benefit.value(0.0) == 1.0
        assert simple_benefit.value(0.05) == 1.0
        assert simple_benefit.value(0.10) == 2.0
        assert simple_benefit.value(0.15) == 2.0
        assert simple_benefit.value(0.30) == 5.0
        assert simple_benefit.value(10.0) == 5.0

    def test_value_negative_raises(self, simple_benefit):
        with pytest.raises(ValueError):
            simple_benefit.value(-0.1)

    def test_point_at_exact(self, simple_benefit):
        assert simple_benefit.point_at(0.20).benefit == 4.0

    def test_point_at_non_point_raises(self, simple_benefit):
        with pytest.raises(KeyError):
            simple_benefit.point_at(0.15)

    def test_metadata(self, simple_benefit):
        assert simple_benefit.num_points == 4
        assert simple_benefit.local_benefit == 1.0
        assert simple_benefit.max_benefit == 5.0


class TestFromSamples:
    def test_empirical_fractions(self):
        fn = BenefitFunction.from_samples(
            samples=[0.1, 0.2, 0.3, 0.4], response_times=[0.25, 0.45]
        )
        assert fn.value(0.25) == pytest.approx(0.5)
        assert fn.value(0.45) == pytest.approx(1.0)

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError):
            BenefitFunction.from_samples([], [0.1])

    def test_nonpositive_candidates_skipped(self):
        fn = BenefitFunction.from_samples([0.1], [0.0, -1.0, 0.2])
        assert fn.response_times == (0.0, 0.2)

    def test_local_benefit_floors_values(self):
        fn = BenefitFunction.from_samples(
            samples=[1.0], response_times=[0.1], local_benefit=0.3
        )
        # at 0.1 no samples arrived yet, but floor is the local benefit
        assert fn.value(0.1) == pytest.approx(0.3)


class TestScaled:
    def test_zero_ratio_is_identity(self, simple_benefit):
        assert simple_benefit.scaled(0.0) == simple_benefit

    def test_positive_ratio_raises_believed_values(self, simple_benefit):
        believed = simple_benefit.scaled(0.5)
        # 0.10 * 1.5 = 0.15 -> true step still 2.0; 0.20*1.5=0.30 -> 5.0
        assert believed.value(0.10) == 2.0
        assert believed.value(0.20) == 5.0

    def test_negative_ratio_lowers_believed_values(self, simple_benefit):
        believed = simple_benefit.scaled(-0.5)
        # 0.20 * 0.5 = 0.10 -> benefit 2.0 instead of 4.0
        assert believed.point_at(0.20).benefit == 2.0

    def test_ratio_below_minus_one_rejected(self, simple_benefit):
        with pytest.raises(ValueError):
            simple_benefit.scaled(-1.0)

    def test_local_point_untouched(self, simple_benefit):
        assert simple_benefit.scaled(0.3).local_benefit == 1.0

    def test_preserves_level_overrides(self):
        fn = BenefitFunction(
            [
                BenefitPoint(0.0, 0.0),
                BenefitPoint(0.1, 1.0, setup_time=0.02,
                             compensation_time=0.05),
            ]
        )
        scaled = fn.scaled(0.2)
        pt = scaled.point_at(0.1)
        assert pt.setup_time == 0.02
        assert pt.compensation_time == 0.05


class TestTransforms:
    def test_weighted_scales_benefits(self, simple_benefit):
        doubled = simple_benefit.weighted(2.0)
        assert doubled.local_benefit == 2.0
        assert doubled.max_benefit == 10.0

    def test_weighted_negative_rejected(self, simple_benefit):
        with pytest.raises(ValueError):
            simple_benefit.weighted(-1.0)

    def test_truncated_drops_late_points(self, simple_benefit):
        cut = simple_benefit.truncated(0.15)
        assert cut.response_times == (0.0, 0.10)

    def test_hash_and_eq(self, simple_benefit):
        clone = BenefitFunction(simple_benefit.points)
        assert clone == simple_benefit
        assert hash(clone) == hash(simple_benefit)


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
@st.composite
def benefit_functions(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.001, max_value=10.0,
                          allow_nan=False),
                min_size=n, max_size=n, unique=True,
            )
        )
    )
    base = draw(st.floats(min_value=0.0, max_value=5.0))
    increments = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=3.0),
            min_size=n, max_size=n,
        )
    )
    points = [BenefitPoint(0.0, base)]
    value = base
    for t, inc in zip(times, increments):
        value += inc
        points.append(BenefitPoint(t, value))
    return BenefitFunction(points)


@given(benefit_functions(), st.floats(min_value=0.0, max_value=20.0))
@settings(max_examples=60)
def test_value_is_monotone(fn, r):
    """G(r) <= G(r') whenever r <= r'."""
    assert fn.value(r) <= fn.value(r + 1.0) + 1e-12


@given(benefit_functions(), st.floats(min_value=-0.5, max_value=0.5))
@settings(max_examples=60)
def test_scaled_stays_valid_and_bounded(fn, ratio):
    scaled = fn.scaled(ratio)
    # still a valid (monotone) benefit function over the same points
    assert scaled.response_times == fn.response_times
    assert scaled.local_benefit == fn.local_benefit
    for p in scaled.points:
        assert fn.local_benefit <= p.benefit <= fn.max_benefit


@given(benefit_functions())
@settings(max_examples=60)
def test_value_at_points_equals_point_benefit(fn):
    for p in fn.points:
        assert fn.value(p.response_time) == p.benefit

"""Shared fixtures for the test suite.

Also hosts two suite-wide guards:

* **Hypothesis profiles** — ``ci`` (derandomized, no deadline) for the
  tier-1 matrix, ``dev`` (default) for local runs.  CI selects with
  ``--hypothesis-profile=ci --hypothesis-seed=0``.
* **RNG discipline** (:func:`scan_rng_discipline`) — an AST scan over
  ``src/repro`` rejecting bare ``np.random.*`` draws, unseeded
  ``default_rng()`` and the stdlib ``random`` module.  All randomness
  must flow through :mod:`repro.sim.rng` (named streams / pinned
  ``SeedSequence``s) so every artifact stays reproducible.  Enforced by
  ``tests/test_rng_discipline.py``.
"""

import ast
from pathlib import Path
from typing import List

import numpy as np
import pytest
from hypothesis import settings

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.sim.engine import Simulator
from repro.vision.tasks import table1_task_set

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci", deadline=None, derandomize=True, print_blob=True
)
settings.load_profile("dev")

#: ``np.random.X`` attributes that are seeded-construction plumbing, not
#: draws.  ``default_rng`` is allowed only when called with a seed.
_NP_RANDOM_ALLOWED = {
    "SeedSequence", "Generator", "PCG64", "BitGenerator", "default_rng",
}


def scan_rng_discipline(root: Path) -> List[str]:
    """AST-scan ``root`` for nondeterministic RNG use; returns violations.

    Flags (a) the stdlib ``random`` module (import or use), (b) any
    ``np.random.<draw>()`` call on the shared global state, and (c)
    ``np.random.default_rng()`` with no seed argument.
    """
    violations: List[str] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        rel = path.relative_to(root.parent)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        violations.append(
                            f"{rel}:{node.lineno}: stdlib random import"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    violations.append(
                        f"{rel}:{node.lineno}: stdlib random import"
                    )
            elif isinstance(node, ast.Attribute):
                # match <anything>.random.<attr> — numpy's global state
                value = node.value
                if (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in ("np", "numpy")
                ):
                    if node.attr not in _NP_RANDOM_ALLOWED:
                        violations.append(
                            f"{rel}:{node.lineno}: np.random.{node.attr} "
                            "draws from the shared global state"
                        )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "default_rng"
                and not node.args
                and not node.keywords
            ):
                violations.append(
                    f"{rel}:{node.lineno}: default_rng() without a seed"
                )
    return violations


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def simple_benefit():
    """A small well-formed benefit function: local 1.0, then 3 points."""
    return BenefitFunction(
        [
            BenefitPoint(0.0, 1.0),
            BenefitPoint(0.10, 2.0),
            BenefitPoint(0.20, 4.0),
            BenefitPoint(0.30, 5.0),
        ]
    )


@pytest.fixture
def offload_task(simple_benefit):
    """One offloadable task with comfortable slack."""
    return OffloadableTask(
        task_id="off1",
        wcet=0.10,
        period=1.0,
        setup_time=0.02,
        compensation_time=0.10,
        post_time=0.01,
        benefit=simple_benefit,
    )


@pytest.fixture
def local_task():
    return Task(task_id="loc1", wcet=0.05, period=0.5)


@pytest.fixture
def small_task_set(offload_task, local_task):
    return TaskSet([offload_task, local_task])


@pytest.fixture
def table1_tasks():
    return table1_task_set()

"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.sim.engine import Simulator
from repro.vision.tasks import table1_task_set


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def simple_benefit():
    """A small well-formed benefit function: local 1.0, then 3 points."""
    return BenefitFunction(
        [
            BenefitPoint(0.0, 1.0),
            BenefitPoint(0.10, 2.0),
            BenefitPoint(0.20, 4.0),
            BenefitPoint(0.30, 5.0),
        ]
    )


@pytest.fixture
def offload_task(simple_benefit):
    """One offloadable task with comfortable slack."""
    return OffloadableTask(
        task_id="off1",
        wcet=0.10,
        period=1.0,
        setup_time=0.02,
        compensation_time=0.10,
        post_time=0.01,
        benefit=simple_benefit,
    )


@pytest.fixture
def local_task():
    return Task(task_id="loc1", wcet=0.05, period=0.5)


@pytest.fixture
def small_task_set(offload_task, local_task):
    return TaskSet([offload_task, local_task])


@pytest.fixture
def table1_tasks():
    return table1_task_set()

"""Shared fixtures for the test suite.

Also hosts the shared MCKP churn strategies (instances as mutable class
lists plus shrinking-friendly add/remove/modify op sequences) used by
the delta-solver metamorphic suite and the service differential fuzz,
and two suite-wide guards:

* **Hypothesis profiles** — ``ci`` (derandomized, no deadline) for the
  tier-1 matrix, ``dev`` (default) for local runs.  CI selects with
  ``--hypothesis-profile=ci --hypothesis-seed=0``.
* **RNG discipline** (:func:`scan_rng_discipline`) — an AST scan over
  ``src/repro`` rejecting bare ``np.random.*`` draws, unseeded
  ``default_rng()`` and the stdlib ``random`` module.  All randomness
  must flow through :mod:`repro.sim.rng` (named streams / pinned
  ``SeedSequence``s) so every artifact stays reproducible.  Enforced by
  ``tests/test_rng_discipline.py``.
"""

import ast
from pathlib import Path
from typing import List, Sequence, Tuple

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.knapsack import MCKPClass, MCKPInstance, MCKPItem
from repro.sim.engine import Simulator
from repro.vision.tasks import table1_task_set

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci", deadline=None, derandomize=True, print_blob=True
)
settings.load_profile("dev")

#: ``np.random.X`` attributes that are seeded-construction plumbing, not
#: draws.  ``default_rng`` is allowed only when called with a seed.
_NP_RANDOM_ALLOWED = {
    "SeedSequence", "Generator", "PCG64", "BitGenerator", "default_rng",
}


def scan_rng_discipline(root: Path) -> List[str]:
    """AST-scan ``root`` for nondeterministic RNG use; returns violations.

    Flags (a) the stdlib ``random`` module (import or use), (b) any
    ``np.random.<draw>()`` call on the shared global state, and (c)
    ``np.random.default_rng()`` with no seed argument.
    """
    violations: List[str] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        rel = path.relative_to(root.parent)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        violations.append(
                            f"{rel}:{node.lineno}: stdlib random import"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    violations.append(
                        f"{rel}:{node.lineno}: stdlib random import"
                    )
            elif isinstance(node, ast.Attribute):
                # match <anything>.random.<attr> — numpy's global state
                value = node.value
                if (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in ("np", "numpy")
                ):
                    if node.attr not in _NP_RANDOM_ALLOWED:
                        violations.append(
                            f"{rel}:{node.lineno}: np.random.{node.attr} "
                            "draws from the shared global state"
                        )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "default_rng"
                and not node.args
                and not node.keywords
            ):
                violations.append(
                    f"{rel}:{node.lineno}: default_rng() without a seed"
                )
    return violations


# ----------------------------------------------------------------------
# shared MCKP churn strategies
#
# Used by the delta-solver metamorphic suite
# (tests/knapsack/test_delta.py) and the service differential fuzz.  The
# op encoding is deliberately shrinking-friendly: indices are small
# unconstrained integers applied modulo the current length, so Hypothesis
# can shrink any op in isolation without invalidating the sequence.
# ----------------------------------------------------------------------

#: Integer-valued floats so optimal values compare exactly with ``==``.
mckp_item_values = st.integers(min_value=0, max_value=30).map(float)
#: Up to 1.5x the default capacity so some items — occasionally whole
#: classes — are unfittable, covering the infeasible delta paths.
mckp_item_weights = st.floats(
    min_value=0.0, max_value=30.0, allow_nan=False, allow_infinity=False
)

CHURN_CAPACITY = 20.0


@st.composite
def mckp_class_items(draw) -> Tuple[MCKPItem, ...]:
    """The ``(value, weight)`` item tuple of one MCKP class."""
    size = draw(st.integers(min_value=1, max_value=4))
    return tuple(
        MCKPItem(
            value=draw(mckp_item_values), weight=draw(mckp_item_weights)
        )
        for _ in range(size)
    )


@st.composite
def churn_ops(draw):
    """One add/remove/modify churn operation on a class list.

    ``("add", position, items)`` inserts a class, ``("remove", index)``
    deletes one, ``("modify", index, items)`` replaces one's items.
    Positions/indices wrap modulo the list length at application time,
    so every drawn op is valid against every intermediate state.
    """
    kind = draw(st.sampled_from(("add", "remove", "modify")))
    if kind == "remove":
        return ("remove", draw(st.integers(min_value=0, max_value=7)))
    index = draw(st.integers(min_value=0, max_value=7))
    return (kind, index, draw(mckp_class_items()))


def apply_churn_op(class_items: List[Tuple[MCKPItem, ...]], op):
    """Apply one churn op in place; no-op removes/modifies on empty."""
    kind = op[0]
    if kind == "add":
        class_items.insert(op[1] % (len(class_items) + 1), op[2])
    elif kind == "remove":
        if class_items:
            class_items.pop(op[1] % len(class_items))
    else:  # modify
        if class_items:
            class_items[op[1] % len(class_items)] = op[2]
    return class_items


def build_churned_instance(
    class_items: Sequence[Tuple[MCKPItem, ...]],
    capacity: float = CHURN_CAPACITY,
) -> MCKPInstance:
    """An MCKP instance over ``class_items`` with positional class ids."""
    return MCKPInstance(
        classes=tuple(
            MCKPClass(f"c{index}", tuple(items))
            for index, items in enumerate(class_items)
        ),
        capacity=capacity,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def simple_benefit():
    """A small well-formed benefit function: local 1.0, then 3 points."""
    return BenefitFunction(
        [
            BenefitPoint(0.0, 1.0),
            BenefitPoint(0.10, 2.0),
            BenefitPoint(0.20, 4.0),
            BenefitPoint(0.30, 5.0),
        ]
    )


@pytest.fixture
def offload_task(simple_benefit):
    """One offloadable task with comfortable slack."""
    return OffloadableTask(
        task_id="off1",
        wcet=0.10,
        period=1.0,
        setup_time=0.02,
        compensation_time=0.10,
        post_time=0.01,
        benefit=simple_benefit,
    )


@pytest.fixture
def local_task():
    return Task(task_id="loc1", wcet=0.05, period=0.5)


@pytest.fixture
def small_task_set(offload_task, local_task):
    return TaskSet([offload_task, local_task])


@pytest.fixture
def table1_tasks():
    return table1_task_set()

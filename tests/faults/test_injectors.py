"""Unit tests for the fault models: schedules and the injection transport."""

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultInjectionTransport, FaultSchedule
from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import OffloadableTask
from repro.sched.transport import FixedLatencyTransport, OffloadRequest
from repro.sim.engine import Simulator


def _task():
    return OffloadableTask(
        "o", wcet=0.2, period=1.0,
        setup_time=0.05, compensation_time=0.2,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 1.0), BenefitPoint(0.5, 2.0)]
        ),
    )


def _request(job_id=0, submitted_at=0.0):
    return OffloadRequest(
        task=_task(), job_id=job_id, submitted_at=submitted_at,
        response_budget=0.5, level_response_time=0.5,
    )


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meltdown", 0.0, 1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            FaultEvent("crash", -1.0, 1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent("crash", 0.0, 0.0)

    def test_probability_kind_magnitude_bounded(self):
        with pytest.raises(ValueError, match="probability"):
            FaultEvent("drop", 0.0, 1.0, magnitude=1.5)

    def test_covers_is_half_open(self):
        event = FaultEvent("crash", 1.0, 2.0)
        assert not event.covers(0.999)
        assert event.covers(1.0)
        assert event.covers(2.999)
        assert not event.covers(3.0)


class TestFaultSchedule:
    def test_events_sorted_and_queried(self):
        schedule = FaultSchedule(
            [
                FaultEvent("partition", 5.0, 1.0),
                FaultEvent("crash", 1.0, 2.0),
            ]
        )
        assert [e.kind for e in schedule] == ["crash", "partition"]
        assert schedule.blackholed(1.5)
        assert not schedule.blackholed(4.0)
        assert schedule.blackholed(5.5)
        assert schedule.end_time == 6.0

    def test_latency_magnitudes_stack(self):
        schedule = FaultSchedule(
            [
                FaultEvent("latency_spike", 0.0, 2.0, magnitude=0.5),
                FaultEvent("latency_spike", 1.0, 2.0, magnitude=0.25),
            ]
        )
        assert schedule.magnitude("latency_spike", 0.5) == 0.5
        assert schedule.magnitude("latency_spike", 1.5) == 0.75

    def test_probability_magnitudes_take_max(self):
        schedule = FaultSchedule(
            [
                FaultEvent("drop", 0.0, 2.0, magnitude=0.5),
                FaultEvent("drop", 0.0, 2.0, magnitude=0.8),
            ]
        )
        assert schedule.magnitude("drop", 1.0) == 0.8

    def test_shifted(self):
        schedule = FaultSchedule.outage(1.0, 2.0).shifted(10.0)
        assert schedule.events[0].start == 11.0
        assert schedule.events[0].end == 13.0

    def test_random_is_deterministic_per_seed(self):
        a = FaultSchedule.random(np.random.default_rng(7), horizon=20.0)
        b = FaultSchedule.random(np.random.default_rng(7), horizon=20.0)
        assert a.events == b.events
        assert len(a) >= 1

    def test_random_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule.random(
                np.random.default_rng(0), horizon=10.0, kinds=["nope"]
            )


class TestFaultInjectionTransport:
    def test_crash_blackholes_requests(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=0.1)
        transport = FaultInjectionTransport(
            sim, inner, FaultSchedule.outage(0.0, 5.0)
        )
        arrivals = []
        transport.submit(_request(), arrivals.append)
        sim.run_until(10.0)
        assert arrivals == []
        assert transport.requests_blackholed == 1
        assert inner.submitted == 0  # never even reached the server

    def test_crash_blackholes_inflight_results(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=1.0)
        # request leaves before the crash, result would land inside it
        transport = FaultInjectionTransport(
            sim, inner, FaultSchedule.outage(0.5, 5.0)
        )
        arrivals = []
        transport.submit(_request(), arrivals.append)
        sim.run_until(10.0)
        assert arrivals == []
        assert transport.results_blackholed == 1
        assert inner.submitted == 1  # the server did get the request

    def test_result_after_restart_is_delivered(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=1.0)
        transport = FaultInjectionTransport(
            sim, inner, FaultSchedule.outage(0.2, 0.5)
        )
        arrivals = []
        transport.submit(_request(), arrivals.append)
        sim.run_until(10.0)
        assert arrivals == [pytest.approx(1.0)]

    def test_latency_spike_delays_results(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=0.1)
        transport = FaultInjectionTransport(
            sim, inner,
            FaultSchedule.latency_storm(0.0, 5.0, extra_latency=2.0),
        )
        arrivals = []
        transport.submit(_request(), arrivals.append)
        sim.run_until(10.0)
        assert arrivals == [pytest.approx(2.1)]
        assert transport.results_delayed == 1

    def test_drop_probability_one_discards_all(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=0.1)
        transport = FaultInjectionTransport(
            sim, inner,
            FaultSchedule([FaultEvent("drop", 0.0, 5.0, magnitude=1.0)]),
        )
        arrivals = []
        for job in range(5):
            transport.submit(_request(job_id=job), arrivals.append)
        sim.run_until(10.0)
        assert arrivals == []
        assert transport.results_dropped == 5

    def test_duplicate_delivers_twice(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=0.1)
        transport = FaultInjectionTransport(
            sim, inner,
            FaultSchedule(
                [FaultEvent("duplicate", 0.0, 5.0, magnitude=1.0)]
            ),
        )
        arrivals = []
        transport.submit(_request(), arrivals.append)
        sim.run_until(10.0)
        assert len(arrivals) == 2
        assert transport.results_duplicated == 1

    def test_delay_holds_back_results(self):
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=0.1)
        transport = FaultInjectionTransport(
            sim, inner,
            FaultSchedule(
                [FaultEvent("delay", 0.0, 5.0, magnitude=1.0, extra=3.0)]
            ),
        )
        arrivals = []
        transport.submit(_request(), arrivals.append)
        sim.run_until(10.0)
        assert arrivals == [pytest.approx(3.1)]

    def test_time_offset_shifts_schedule_lookup(self):
        # the crash covers global [10, 15); with offset 10 the window is
        # active from local time 0
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=0.1)
        transport = FaultInjectionTransport(
            sim, inner, FaultSchedule.outage(10.0, 5.0), time_offset=10.0
        )
        arrivals = []
        transport.submit(_request(), arrivals.append)
        sim.run_until(10.0)
        assert arrivals == []
        assert transport.requests_blackholed == 1

    def test_injectors_compose_by_wrapping(self):
        # storm wraps dropper wraps the raw transport: the dropper sees
        # raw arrival times, the storm delays whatever survives
        sim = Simulator()
        inner = FixedLatencyTransport(sim, latency=0.1)
        dropper = FaultInjectionTransport(
            sim, inner,
            FaultSchedule([FaultEvent("drop", 0.0, 0.5, magnitude=1.0)]),
        )
        storm = FaultInjectionTransport(
            sim, dropper,
            FaultSchedule.latency_storm(0.0, 5.0, extra_latency=1.0),
        )
        arrivals = []
        # first result surfaces at 0.1, inside the drop window: dropped
        storm.submit(_request(job_id=0), arrivals.append)
        sim.run_until(0.5)
        # second surfaces at 0.6, outside the drop window: survives the
        # dropper, then the storm delays it by 1.0
        storm.submit(_request(job_id=1), arrivals.append)
        sim.run_until(10.0)
        assert dropper.results_dropped == 1
        assert arrivals == [pytest.approx(1.6)]

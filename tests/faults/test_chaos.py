"""Chaos-harness acceptance tests (the ISSUE's robustness criteria).

Across seeded fault schedules — including a full server outage — the
run must show zero hard-deadline misses while the circuit breaker
trips, degrades to local-only, and re-admits offloading after recovery
with realized benefit back within 10% of the pre-fault window."""

import numpy as np
import pytest

from repro.faults import FaultSchedule, format_chaos, run_chaos
from repro.faults.chaos import FAULT_PROFILES, build_profile_schedule

#: ≥ 5 seeded schedules, full outage included.
ACCEPTANCE_RUNS = [
    ("outage", 0),
    ("outage", 1),
    ("partition", 2),
    ("storm", 3),
    ("flaky", 4),
    ("random", 5),
    ("random", 6),
]


@pytest.mark.parametrize("profile,seed", ACCEPTANCE_RUNS)
def test_no_hard_deadline_miss_under_chaos(profile, seed):
    report = run_chaos(
        seed=seed, profile=profile, num_windows=8, window=4.0
    )
    assert report.hard_deadline_invariant, (
        f"{profile}/seed={seed}: {report.deadline_misses} deadline "
        "misses under injected faults"
    )


@pytest.mark.parametrize("profile,seed", [
    ("outage", 0), ("outage", 1), ("partition", 2), ("storm", 3),
])
def test_breaker_trips_degrades_and_recovers(profile, seed):
    report = run_chaos(
        seed=seed, profile=profile, num_windows=8, window=4.0
    )
    # tripped while the fault was active ...
    assert report.trips >= 1
    # ... demoted to an explicit local-only decision ...
    degraded = [w for w in report.resilience.windows if w.degraded]
    assert degraded
    assert all(w.offloaded == 0 for w in degraded)
    # ... and re-admitted offloading once the server recovered
    assert report.recoveries >= 1
    last = report.resilience.windows[-1]
    assert last.state == "closed"
    assert last.returned > 0
    # realized benefit returns to within 10% of the pre-fault window
    ratio = report.benefit_recovery_ratio
    assert ratio is not None
    assert ratio >= 0.9, (
        f"{profile}/seed={seed}: benefit recovered only to {ratio:.0%}"
    )


def test_full_outage_degradation_floor():
    """During the outage the loop still banks the local benefit: the
    degraded windows earn more than zero but (visibly) less than the
    healthy pre-fault window."""
    report = run_chaos(seed=0, profile="outage", num_windows=8, window=4.0)
    degraded = [w for w in report.resilience.windows if w.degraded]
    assert degraded
    pre = report.pre_fault_benefit
    assert pre is not None
    for w in degraded:
        assert 0 < w.realized_benefit < pre


def test_custom_schedule_and_report_formatting():
    schedule = FaultSchedule.outage(8.0, 8.0)
    report = run_chaos(
        seed=0, schedule=schedule, num_windows=8, window=4.0
    )
    assert report.profile == "custom"
    text = format_chaos(report)
    assert "hard-deadline invariant: OK" in text
    assert "crash" in text
    assert "trips=1" in text


def test_profiles_are_reproducible():
    a = build_profile_schedule("random", horizon=32.0, seed=9)
    b = build_profile_schedule("random", horizon=32.0, seed=9)
    assert a.events == b.events
    with pytest.raises(ValueError, match="profile"):
        build_profile_schedule("nope", horizon=10.0)
    assert set(FAULT_PROFILES) >= {"outage", "partition", "random"}


def test_chaos_runs_are_pure_functions_of_the_seed():
    first = run_chaos(seed=3, profile="random", num_windows=6, window=4.0)
    second = run_chaos(seed=3, profile="random", num_windows=6, window=4.0)
    assert [w.realized_benefit for w in first.resilience.windows] == [
        w.realized_benefit for w in second.resilience.windows
    ]
    assert first.resilience.transitions == second.resilience.transitions

"""Regression form of ``examples/dead_server_guarantee.py``.

The property the whole mechanism exists for: with a server that NEVER
answers and every phase at full WCET, a Theorem-3-feasible
configuration still meets every deadline through local compensation —
under the paper's split-deadline EDF.  The naive baseline misses under
identical conditions (§5.1's "performs poorly" remark)."""

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.schedulability import OffloadAssignment, theorem3_test
from repro.core.task import OffloadableTask, Task, TaskSet
from repro.sched.offload_scheduler import OffloadingScheduler
from repro.sched.transport import NeverRespondsTransport
from repro.sim.engine import Simulator


def build_tasks() -> TaskSet:
    offload = OffloadableTask(
        task_id="offload",
        wcet=0.25,
        period=1.0,
        setup_time=0.05,
        compensation_time=0.25,
        benefit=BenefitFunction(
            [BenefitPoint(0.0, 1.0), BenefitPoint(0.6, 10.0)]
        ),
    )
    return TaskSet([offload, Task("local", 0.2, 0.85)])


def run_dead_server(mode: str):
    tasks = build_tasks()
    sim = Simulator()
    scheduler = OffloadingScheduler(
        sim,
        tasks,
        response_times={"offload": 0.6},
        transport=NeverRespondsTransport(),
        deadline_mode=mode,
    )
    return scheduler.run(8.0)


def test_configuration_is_theorem3_feasible():
    check = theorem3_test(
        build_tasks(), [OffloadAssignment("offload", 0.6)]
    )
    assert check.feasible


def test_split_mode_meets_every_deadline_via_compensation():
    trace = run_dead_server("split")
    assert trace.all_deadlines_met
    # every offloaded job compensated — the server never answered
    offloaded = [r for r in trace.jobs.values() if r.offloaded]
    assert offloaded
    assert all(r.compensated for r in offloaded)
    assert not any(r.result_returned for r in offloaded)
    # every job actually finished, and did so by its absolute deadline
    for rec in trace.jobs.values():
        assert rec.finish is not None
        assert rec.finish <= rec.absolute_deadline + 1e-9


def test_naive_mode_misses_under_same_conditions():
    trace = run_dead_server("naive")
    assert trace.deadline_miss_count > 0

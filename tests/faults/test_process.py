"""Replica supervision + fleet chaos schedule + link chaos."""

import asyncio

import numpy as np
import pytest

from repro.faults import (
    ChaosAction,
    FaultEvent,
    FaultSchedule,
    FleetChaosSchedule,
    LinkChaos,
    LinkLoss,
    ReplicaProcess,
)
from repro.service import (
    AdmissionRequest,
    BatchPolicy,
    ConnectionLost,
    ODMService,
    ServiceClient,
)
from repro.workloads.generator import random_offloading_task_set


def make_request(request_id="r1", seed=1):
    tasks = random_offloading_task_set(
        np.random.default_rng(seed), num_tasks=3, total_utilization=0.5
    )
    return AdmissionRequest(
        request_id=request_id,
        tasks=tasks,
        server_estimates={"edge": 1.0},
    )


def make_replica(replica_id="replica-0"):
    return ReplicaProcess(
        replica_id,
        lambda: ODMService(
            workers=1,
            replica_id=replica_id,
            batch_policy=BatchPolicy(
                max_batch=8, max_wait=0.001, queue_capacity=32
            ),
        ),
    )


class TestReplicaProcess:
    def test_start_serve_stop(self):
        async def scenario():
            proc = make_replica()
            await proc.start()
            assert proc.running
            assert proc.port > 0
            async with ServiceClient(port=proc.port) as client:
                response = await client.submit(make_request())
            await proc.stop()
            assert not proc.running
            return response

        response = asyncio.run(scenario())
        assert response.admitted
        assert response.replica == "replica-0"

    def test_kill_resets_inflight_clients_fast(self):
        async def scenario():
            proc = make_replica()
            await proc.start()
            client = await ServiceClient(port=proc.port).connect()
            # park a request, then kill mid-flight
            proc.service.force_level(None)
            original = proc.service.shard_solver.solve_batch

            def slow(entries):
                import time

                time.sleep(0.5)
                return original(entries)

            proc.service.shard_solver.solve_batch = slow
            submit = asyncio.create_task(
                client.submit(make_request("inflight"))
            )
            await asyncio.sleep(0.05)
            await proc.kill()
            with pytest.raises(ConnectionLost):
                # fail-fast: bounded by the kill, not by a timeout
                await asyncio.wait_for(submit, timeout=5.0)
            await client.close()
            return proc

        proc = asyncio.run(scenario())
        assert proc.kills == 1
        assert not proc.running

    def test_restart_rebinds_the_same_port(self):
        async def scenario():
            proc = make_replica()
            await proc.start()
            port = proc.port
            first_service = proc.service
            await proc.kill()
            await proc.restart()
            assert proc.port == port
            # restart amnesia: a fresh service instance, zero state
            assert proc.service is not first_service
            async with ServiceClient(port=port) as client:
                response = await client.submit(make_request("after"))
                stats = await client.stats()
            await proc.stop()
            return response, stats, proc

        response, stats, proc = asyncio.run(scenario())
        assert response.admitted
        assert stats["requests"] == 1  # old counters are gone
        assert proc.starts == 2
        assert proc.kills == 1

    def test_invalid_replica_id_rejected(self):
        with pytest.raises(ValueError, match="replica_id"):
            ReplicaProcess("", lambda: ODMService())


class TestFleetChaosSchedule:
    def test_actions_pop_in_time_order(self):
        schedule = FleetChaosSchedule(
            [
                ChaosAction(2.0, "restart", "replica-1"),
                ChaosAction(1.0, "kill", "replica-1"),
            ]
        )
        assert len(schedule) == 2
        assert schedule.due(0.5) == []
        due = schedule.due(1.0)
        assert [a.action for a in due] == ["kill"]
        assert schedule.remaining == 1
        assert [a.action for a in schedule.due(10.0)] == ["restart"]
        assert schedule.due(20.0) == []
        schedule.reset()
        assert schedule.remaining == 2

    def test_kill_restart_builder_validates_ordering(self):
        schedule = FleetChaosSchedule.kill_restart(
            "replica-1", kill_at=1.0, restart_at=2.0
        )
        assert [a.action for a in schedule] == ["kill", "restart"]
        with pytest.raises(ValueError, match="restart_at"):
            FleetChaosSchedule.kill_restart(
                "replica-1", kill_at=2.0, restart_at=1.0
            )

    def test_invalid_actions_rejected(self):
        with pytest.raises(ValueError, match="chaos action"):
            ChaosAction(1.0, "reboot", "replica-1")
        with pytest.raises(ValueError, match="target"):
            ChaosAction(1.0, "kill", "")
        with pytest.raises(ValueError, match="time"):
            ChaosAction(-1.0, "kill", "replica-1")


class TestLinkChaos:
    def make(self, events, now=0.0, seed=0):
        clock = {"now": now}
        chaos = LinkChaos(
            {"replica-1": FaultSchedule(events)},
            rng=np.random.default_rng(seed),
            clock=lambda: clock["now"],
        )
        return chaos, clock

    def test_blackhole_raises_link_loss(self):
        chaos, clock = self.make(
            [FaultEvent("partition", start=1.0, duration=1.0)]
        )

        async def scenario():
            await chaos.impose("replica-1")  # before the window: clean
            clock["now"] = 1.5
            with pytest.raises(LinkLoss):
                await chaos.impose("replica-1")
            await chaos.impose("replica-2")  # unknown link: no schedule

        asyncio.run(scenario())
        assert chaos.snapshot()["replica-1"]["losses"] == 1

    def test_certain_drop_is_a_loss(self):
        chaos, clock = self.make(
            [FaultEvent("drop", start=0.0, duration=5.0, magnitude=1.0)]
        )

        async def scenario():
            with pytest.raises(LinkLoss):
                await chaos.impose("replica-1")

        asyncio.run(scenario())

    def test_latency_spike_delays_but_delivers(self):
        chaos, clock = self.make(
            [
                FaultEvent(
                    "latency_spike",
                    start=0.0,
                    duration=5.0,
                    magnitude=10.0,  # capped by max_delay
                )
            ]
        )

        async def scenario():
            await chaos.impose("replica-1")

        asyncio.run(scenario())
        stats = chaos.snapshot()["replica-1"]
        assert stats["delays"] == 1
        # the real sleep is bounded, whatever the schedule says
        assert stats["delay_seconds"] <= 0.05 + 1e-9

    def test_loss_draws_are_seeded(self):
        events = [
            FaultEvent("drop", start=0.0, duration=5.0, magnitude=0.5)
        ]

        async def outcomes(seed):
            chaos, _clock = self.make(events, seed=seed)
            results = []
            for _ in range(20):
                try:
                    await chaos.impose("replica-1")
                    results.append(True)
                except LinkLoss:
                    results.append(False)
            return results

        first = asyncio.run(outcomes(3))
        second = asyncio.run(outcomes(3))
        other = asyncio.run(outcomes(4))
        assert first == second
        assert first != other

"""Health monitor and circuit-breaker state machine tests."""

import pytest

from repro.runtime.health import (
    CircuitBreaker,
    HealthMonitor,
    ResilientOffloadingSystem,
)
from repro.faults import FaultSchedule


class TestHealthMonitor:
    def test_empty_monitor_reports_zero(self):
        assert HealthMonitor().failure_rate() == 0.0

    def test_failure_rate_counts_compensations(self):
        monitor = HealthMonitor(window=10.0)
        monitor.record(1.0, timely=True)
        monitor.record(2.0, timely=False)
        monitor.record(3.0, timely=False)
        monitor.record(4.0, timely=True)
        assert monitor.failure_rate() == pytest.approx(0.5)
        assert monitor.sample_count == 4

    def test_old_samples_evicted(self):
        monitor = HealthMonitor(window=5.0)
        monitor.record(0.0, timely=False)
        monitor.record(1.0, timely=False)
        monitor.record(8.0, timely=True)
        # the two failures fell out of the [3, 8] window
        assert monitor.failure_rate(now=8.0) == 0.0
        assert monitor.sample_count == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            HealthMonitor(window=0.0)


class TestCircuitBreaker:
    def test_starts_closed(self):
        breaker = CircuitBreaker()
        assert breaker.state == "closed"
        assert breaker.allows_offloading

    def test_trips_on_high_failure_rate(self):
        breaker = CircuitBreaker(failure_threshold=0.5, min_samples=3)
        assert breaker.record_window(0, successes=0, failures=4) == "open"
        assert breaker.trips == 1
        assert not breaker.allows_offloading

    def test_insufficient_evidence_does_not_trip(self):
        breaker = CircuitBreaker(failure_threshold=0.5, min_samples=5)
        assert breaker.record_window(0, successes=0, failures=4) == "closed"
        assert breaker.trips == 0

    def test_cooldown_then_half_open(self):
        breaker = CircuitBreaker(min_samples=2, cooldown_windows=2)
        breaker.record_window(0, successes=0, failures=5)
        assert breaker.state == "open"
        assert breaker.record_window(1, successes=0, failures=0) == "open"
        assert breaker.record_window(2, successes=0, failures=0) == "half_open"
        assert breaker.allows_offloading  # the probe window offloads

    def test_successful_probe_recloses(self):
        breaker = CircuitBreaker(min_samples=2, cooldown_windows=1)
        breaker.record_window(0, successes=0, failures=5)
        breaker.record_window(1, successes=0, failures=0)  # cooldown
        assert breaker.state == "half_open"
        assert breaker.record_window(2, successes=5, failures=0) == "closed"
        assert breaker.recoveries == 1

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(min_samples=2, cooldown_windows=1)
        breaker.record_window(0, successes=0, failures=5)
        breaker.record_window(1, successes=0, failures=0)
        assert breaker.state == "half_open"
        assert breaker.record_window(2, successes=0, failures=5) == "open"
        # silence during a probe also counts as failure to recover
        breaker.record_window(3, successes=0, failures=0)
        assert breaker.state == "half_open"
        assert breaker.record_window(4, successes=0, failures=0) == "open"

    def test_transition_log(self):
        breaker = CircuitBreaker(min_samples=1, cooldown_windows=1)
        breaker.record_window(0, successes=0, failures=3)
        breaker.record_window(1, successes=0, failures=0)
        breaker.record_window(2, successes=3, failures=0)
        assert breaker.transitions == [
            (0, "closed", "open"),
            (1, "open", "half_open"),
            (2, "half_open", "closed"),
        ]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(min_samples=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_windows=0)
        with pytest.raises(ValueError):
            CircuitBreaker().record_window(0, successes=-1, failures=0)


class TestCircuitBreakerHalfOpenEdges:
    """Edge transitions of the probe window (half_open) state."""

    def tripped(self, **kwargs):
        kwargs.setdefault("failure_threshold", 0.5)
        kwargs.setdefault("min_samples", 2)
        kwargs.setdefault("cooldown_windows", 1)
        breaker = CircuitBreaker(**kwargs)
        breaker.record_window(0, successes=0, failures=5)
        window = 1
        while breaker.state == "open":  # sit out the cooldown
            breaker.record_window(window, successes=0, failures=0)
            window += 1
        assert breaker.state == "half_open"
        return breaker

    def test_probe_exactly_at_threshold_reopens(self):
        # the threshold is "rate >= threshold trips", so a probe that
        # fails exactly half its offloads under threshold 0.5 is judged
        # failed, not recovered
        breaker = self.tripped()
        assert breaker.record_window(2, successes=2, failures=2) == "open"
        assert breaker.recoveries == 0

    def test_probe_just_below_threshold_recloses(self):
        breaker = self.tripped()
        assert breaker.record_window(2, successes=3, failures=2) == "closed"
        assert breaker.recoveries == 1
        assert breaker.allows_offloading

    def test_probe_without_min_samples_reopens_even_if_clean(self):
        # 1 success < min_samples=2: silence is not recovery evidence
        breaker = self.tripped()
        assert breaker.record_window(2, successes=1, failures=0) == "open"
        assert breaker.recoveries == 0

    def test_failed_probe_pays_the_full_cooldown_again(self):
        breaker = self.tripped(cooldown_windows=2)
        breaker.record_window(3, successes=0, failures=5)  # probe fails
        assert breaker.state == "open"
        assert breaker.record_window(4, successes=0, failures=0) == "open"
        assert (
            breaker.record_window(5, successes=0, failures=0) == "half_open"
        )

    def test_reclose_then_retrip_counts_both(self):
        breaker = self.tripped()
        breaker.record_window(2, successes=5, failures=0)
        assert breaker.state == "closed"
        breaker.record_window(3, successes=0, failures=5)
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert breaker.recoveries == 1

    def test_concurrent_probe_windows_are_independent(self):
        # two servers probing in the same window index: one recovers,
        # one does not — state machines must not interfere
        good = self.tripped()
        bad = self.tripped()
        assert good.record_window(2, successes=5, failures=0) == "closed"
        assert bad.record_window(2, successes=0, failures=5) == "open"
        assert good.transitions[-1] == (2, "half_open", "closed")
        assert bad.transitions[-1] == (2, "half_open", "open")


class TestCircuitBreakerApplyRemote:
    """Gossiped (remote) breaker evidence folding."""

    def test_remote_open_trips_closed_breaker(self):
        breaker = CircuitBreaker(cooldown_windows=1)
        assert breaker.apply_remote("open", window=3) == "open"
        assert breaker.trips == 1
        assert breaker.remote_trips == 1
        assert breaker.transitions == [(3, "closed", "open")]
        # the remote trip sets a real cooldown: open -> half_open later
        assert breaker.record_window(4, successes=0, failures=0) == "half_open"

    def test_remote_open_interrupts_probe(self):
        breaker = CircuitBreaker(min_samples=2, cooldown_windows=1)
        breaker.record_window(0, successes=0, failures=5)
        breaker.record_window(1, successes=0, failures=0)
        assert breaker.state == "half_open"
        assert breaker.apply_remote("open", window=2) == "open"
        assert breaker.remote_trips == 1

    def test_remote_open_on_open_breaker_is_noop(self):
        breaker = CircuitBreaker()
        breaker.apply_remote("open")
        trips = breaker.trips
        assert breaker.apply_remote("open") == "open"
        assert breaker.trips == trips  # no double counting

    def test_remote_closed_recloses_only_a_probing_breaker(self):
        breaker = CircuitBreaker(min_samples=2, cooldown_windows=2)
        breaker.record_window(0, successes=0, failures=5)
        # still in cooldown: a peer's recovery must NOT skip the back-off
        assert breaker.apply_remote("closed", window=1) == "open"
        assert breaker.recoveries == 0
        breaker.record_window(1, successes=0, failures=0)
        breaker.record_window(2, successes=0, failures=0)
        assert breaker.state == "half_open"
        # in the probe window, peer evidence of recovery counts
        assert breaker.apply_remote("closed", window=3) == "closed"
        assert breaker.recoveries == 1

    def test_remote_closed_on_closed_breaker_is_noop(self):
        breaker = CircuitBreaker()
        assert breaker.apply_remote("closed") == "closed"
        assert breaker.transitions == []

    def test_remote_half_open_never_acts(self):
        breaker = CircuitBreaker()
        assert breaker.apply_remote("half_open") == "closed"
        breaker.apply_remote("open")
        assert breaker.apply_remote("half_open") == "open"

    def test_unknown_remote_state_rejected(self):
        with pytest.raises(ValueError, match="remote breaker state"):
            CircuitBreaker().apply_remote("exploded")


class TestResilientOffloadingSystem:
    def test_healthy_run_never_trips(self, table1_tasks):
        system = ResilientOffloadingSystem(
            table1_tasks, scenario="idle", seed=0, window=4.0
        )
        report = system.run(num_windows=3)
        assert report.trips == 0
        assert report.degraded_windows == 0
        assert report.hard_deadline_invariant
        assert all(w.state == "closed" for w in report.windows)

    def test_outage_trips_degrades_and_recovers(self, table1_tasks):
        # crash covers windows 2-3 of 8
        system = ResilientOffloadingSystem(
            table1_tasks,
            scenario="idle",
            seed=0,
            window=4.0,
            fault_schedule=FaultSchedule.outage(8.0, 8.0),
        )
        report = system.run(num_windows=8)
        assert report.hard_deadline_invariant
        assert report.trips == 1
        assert report.recoveries == 1
        # the open window offloads nothing (local-only decision in force)
        degraded = [w for w in report.windows if w.state == "open"]
        assert degraded and all(w.offloaded == 0 for w in degraded)
        assert all(
            r == 0.0 for w in degraded for r in w.response_times.values()
        )
        # offloading is re-admitted and the final window is healthy
        assert report.windows[-1].state == "closed"
        assert report.windows[-1].returned > 0
        assert report.recovery_latency_windows() is not None

    def test_local_only_decision_is_theorem3_verified(self, table1_tasks):
        system = ResilientOffloadingSystem(table1_tasks, seed=0)
        degraded = system._local_only_tasks()
        decision = system.odm.decide(degraded)
        assert decision.schedulability.feasible
        assert all(r == 0.0 for r in decision.response_times.values())

    def test_invalid_parameters_rejected(self, table1_tasks):
        with pytest.raises(ValueError, match="scenario"):
            ResilientOffloadingSystem(table1_tasks, scenario="nope")
        with pytest.raises(ValueError, match="window"):
            ResilientOffloadingSystem(table1_tasks, window=0.0)
        with pytest.raises(ValueError, match="num_windows"):
            ResilientOffloadingSystem(table1_tasks).run(num_windows=0)

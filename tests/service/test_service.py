"""ODMService end-to-end: admission, verification, backpressure,
forced degradation, breaker-driven routing, clean shutdown."""

import asyncio
import time

import numpy as np
import pytest

from repro.core.schedulability import OffloadAssignment, theorem3_test
from repro.service import (
    AdmissionRequest,
    BatchPolicy,
    DegradationLevel,
    ODMService,
)
from repro.workloads.generator import random_offloading_task_set


def run(coro):
    return asyncio.run(coro)


def make_request(request_id="r1", seed=1, utilization=0.5, servers=None):
    tasks = random_offloading_task_set(
        np.random.default_rng(seed),
        num_tasks=4,
        total_utilization=utilization,
    )
    return AdmissionRequest(
        request_id=request_id,
        tasks=tasks,
        server_estimates=dict(servers or {"edge": 1.0, "cloud": 1.1}),
    )


def small_service(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault(
        "batch_policy",
        BatchPolicy(max_batch=8, max_wait=0.001, queue_capacity=32),
    )
    return ODMService(**kwargs)


def test_submit_requires_start():
    service = small_service()

    async def scenario():
        with pytest.raises(RuntimeError):
            await service.submit(make_request())

    run(scenario())


def test_admission_is_theorem3_verified():
    async def scenario():
        async with small_service() as service:
            request = make_request()
            response = await service.submit(request)
        assert response.admitted
        assert response.degradation == "exact"
        assert response.solver == "dp"
        assert set(response.placements) == {
            t.task_id for t in request.tasks
        }
        assignments = [
            OffloadAssignment(tid, r)
            for tid, (_s, r) in response.placements.items()
            if r > 0
        ]
        check = theorem3_test(request.tasks, assignments)
        assert check.feasible
        assert response.total_demand_rate == pytest.approx(
            check.total_demand_rate
        )
        assert response.latency > 0
        assert response.batch_size >= 1

    run(scenario())


def test_concurrent_submissions_coalesce_into_batches():
    async def scenario():
        async with small_service() as service:
            requests = [
                make_request(f"r{i}", seed=i % 3) for i in range(8)
            ]
            responses = await asyncio.gather(
                *(service.submit(r) for r in requests)
            )
        assert all(r.admitted for r in responses)
        assert max(r.batch_size for r in responses) >= 2
        stats = service.stats()
        assert stats["requests"] == 8
        assert stats["batches"] < 8
        assert stats["cache"]["hits"] + stats["cache"]["misses"] >= 1

    run(scenario())


def test_backpressure_sheds_when_queue_is_full():
    async def scenario():
        service = small_service(
            batch_policy=BatchPolicy(
                max_batch=1, max_wait=0.0, queue_capacity=2
            ),
        )
        async with service:
            original = service.shard_solver.solve_batch

            def slow(entries):
                time.sleep(0.25)
                return original(entries)

            service.shard_solver.solve_batch = slow
            first = asyncio.create_task(
                service.submit(make_request("head"))
            )
            await asyncio.sleep(0.05)  # head enters the slow solve
            rest = await asyncio.gather(
                *(
                    service.submit(make_request(f"r{i}"))
                    for i in range(4)
                )
            )
            head = await first
        assert head.admitted
        statuses = sorted(r.status for r in rest)
        assert statuses.count("shed") == 2  # queue held the other two
        assert statuses.count("admitted") == 2
        shed = [r for r in rest if r.status == "shed"]
        assert all(r.placements == {} for r in shed)

    run(scenario())


def test_forced_degradation_levels():
    async def scenario():
        async with small_service() as service:
            # distinct request ids: a reused id would be answered by the
            # idempotent dedup cache instead of the forced rung
            exact = await service.submit(make_request("level-exact"))

            service.force_level(DegradationLevel.HEURISTIC)
            heuristic = await service.submit(make_request("level-heu"))

            service.force_level(DegradationLevel.LOCAL_ONLY)
            local = await service.submit(make_request("level-local"))

            service.force_level(None)
            back = await service.submit(make_request("level-back"))
        assert exact.degradation == "exact" and exact.solver == "dp"
        assert heuristic.degradation == "heuristic"
        assert heuristic.solver == "heu_oe"
        assert local.degradation == "local_only"
        assert local.solver == "none"
        assert back.degradation == "exact"
        # degradation never flips a feasible set into a rejection here
        assert exact.admitted and heuristic.admitted and local.admitted
        # local-only serves everything at the local point
        assert all(r == 0.0 for _s, r in local.placements.values())
        assert local.allowed_servers == {}
        # heuristic may lose benefit but never beats the exact optimum
        assert (
            heuristic.expected_benefit
            <= exact.expected_benefit + 1e-9
        )

    run(scenario())


def test_open_breaker_removes_server_from_routing():
    async def scenario():
        service = small_service(
            breaker_kwargs={"min_samples": 3, "cooldown_windows": 1},
        )
        async with service:
            # fresh ids per phase: a reused id would hit the dedup cache
            before = await service.submit(
                make_request("brk-before", servers={"edge": 1.0})
            )

            for _ in range(5):
                service.record_outcome("edge", False, 1.0)
            states = service.close_health_window()
            assert states["edge"] == "open"
            assert service.breaker_state("edge") == "open"

            during = await service.submit(
                make_request("brk-during", servers={"edge": 1.0})
            )

            # cooldown: open -> half_open, then a good probe recloses
            service.close_health_window()
            assert service.breaker_state("edge") == "half_open"
            for _ in range(5):
                service.record_outcome("edge", True, 2.0)
            states = service.close_health_window()
            assert states["edge"] == "closed"

            after = await service.submit(
                make_request("brk-after", servers={"edge": 1.0})
            )

        # with the only server broken, the request fell back to the
        # local-only direct path (still a verified admission)
        assert before.allowed_servers == {"edge": 1.0}
        assert during.allowed_servers == {}
        assert during.degradation == "local_only"
        assert after.allowed_servers == {"edge": 1.0}
        assert after.degradation == "exact"

    run(scenario())


def test_stop_with_drain_answers_everything():
    async def scenario():
        service = small_service()
        await service.start()
        futures = [
            asyncio.create_task(service.submit(make_request(f"r{i}")))
            for i in range(6)
        ]
        await asyncio.sleep(0)  # let them enqueue
        await service.stop(drain=True)
        responses = await asyncio.gather(*futures)
        assert all(r.status in ("admitted", "rejected") for r in responses)
        assert not service.started

    run(scenario())


def test_stats_snapshot_shape():
    async def scenario():
        async with small_service() as service:
            await service.submit(make_request())
            return service.stats()

    stats = run(scenario())
    for key in (
        "requests", "admitted", "rejected", "shed", "batches",
        "queue_depth", "degradation_level", "batch_size_mean",
        "solve_latency_p50", "solve_latency_p99", "breakers", "cache",
    ):
        assert key in stats
    assert stats["requests"] == 1
    assert stats["admitted"] == 1
    assert stats["degradation_level"] == "exact"


def test_infeasible_set_is_rejected_not_errored():
    async def scenario():
        async with small_service() as service:
            # utilization far above 1: nothing can make this schedulable
            request = make_request(seed=3, utilization=3.0)
            return await service.submit(request)

    response = run(scenario())
    assert response.status == "rejected"
    assert response.placements == {}

    run_report = response.to_dict()
    assert run_report["status"] == "rejected"

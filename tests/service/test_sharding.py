"""ShardSolver: batched == serial bit-for-bit, cache probing, dedup."""

import random

import pytest

from repro.knapsack import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    SOLVERS,
    SolverCache,
)
from repro.parallel import SweepRunner
from repro.service import ShardSolver


def random_instance(rng: random.Random) -> MCKPInstance:
    classes = []
    for index in range(rng.randint(2, 4)):
        items = tuple(
            MCKPItem(
                value=float(rng.randint(0, 40)),
                weight=float(rng.randint(0, 12)),
            )
            for _ in range(rng.randint(2, 4))
        )
        classes.append(MCKPClass(f"c{index}", items))
    return MCKPInstance(classes=tuple(classes), capacity=20.0)


def entries_for(instances):
    entries = []
    for i, instance in enumerate(instances):
        if i % 3 == 2:
            entries.append(("heu_oe", instance, {}))
        else:
            entries.append(("dp", instance, {"resolution": 20}))
    return entries


@pytest.mark.parametrize("workers", [1, 2])
def test_batched_equals_serial_bit_for_bit(workers):
    rng = random.Random(5)
    instances = [random_instance(rng) for _ in range(12)]
    entries = entries_for(instances)

    with SweepRunner(workers=workers) as runner:
        batched = ShardSolver(runner, cache=None).solve_batch(entries)

    for (name, instance, kwargs), selection in zip(entries, batched):
        serial = SOLVERS[name](instance, **kwargs)
        if serial is None:
            assert selection is None
            continue
        assert selection is not None
        assert selection.choices == serial.choices
        assert selection.total_value == serial.total_value
        assert selection.instance is instance


def test_cache_probes_avoid_resolves():
    rng = random.Random(9)
    instances = [random_instance(rng) for _ in range(6)]
    entries = entries_for(instances)
    cache = SolverCache()
    solver = ShardSolver(SweepRunner(workers=1), cache=cache)

    first = solver.solve_batch(entries)
    assert cache.hits == 0
    misses = cache.misses

    second = solver.solve_batch(entries)
    assert cache.misses == misses  # no new solves
    assert cache.hits == len(entries)
    for a, b in zip(first, second):
        if a is None:
            assert b is None
        else:
            assert b is not None and b.choices == a.choices


def test_in_batch_dedup_collapses_identical_requests():
    rng = random.Random(11)
    instance = random_instance(rng)
    entries = [("dp", instance, {"resolution": 20})] * 5
    cache = SolverCache()
    solver = ShardSolver(SweepRunner(workers=1), cache=cache)

    results = solver.solve_batch(entries)
    # five lookups missed, but only ONE solve was stored
    assert cache.misses == 5
    assert cache.stats["entries"] == 1
    reference = SOLVERS["dp"](instance, resolution=20)
    for selection in results:
        if reference is None:
            assert selection is None
        else:
            assert selection is not None
            assert selection.choices == reference.choices


def test_dedup_distinguishes_solver_and_kwargs():
    rng = random.Random(13)
    instance = random_instance(rng)
    cache = SolverCache()
    solver = ShardSolver(SweepRunner(workers=1), cache=cache)
    solver.solve_batch(
        [
            ("dp", instance, {"resolution": 20}),
            ("dp", instance, {"resolution": 40}),
            ("heu_oe", instance, {}),
        ]
    )
    # three distinct cache keys despite the identical instance
    assert cache.stats["entries"] == 3


def test_unknown_solver_raises():
    rng = random.Random(17)
    solver = ShardSolver(SweepRunner(workers=1), cache=None)
    with pytest.raises(ValueError, match="unknown solver"):
        solver.solve_batch([("nope", random_instance(rng), {})])


def test_empty_batch_is_noop():
    solver = ShardSolver(SweepRunner(workers=1), cache=None)
    assert solver.solve_batch([]) == []

"""Request/response model: validation, wire round-trips, the per-request
MCKP reduction, and estimate scaling properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import BenefitFunction, BenefitPoint
from repro.core.task import Task, TaskSet
from repro.service import (
    AdmissionRequest,
    AdmissionResponse,
    build_request_instance,
    scale_response_times,
    task_from_dict,
    task_to_dict,
)


@pytest.fixture
def fn():
    return BenefitFunction(
        [
            BenefitPoint(0.0, 1.0),
            BenefitPoint(0.10, 2.0, setup_time=0.03),
            BenefitPoint(0.25, 4.0, label="hi"),
        ]
    )


# ----------------------------------------------------------------------
# estimate scaling
# ----------------------------------------------------------------------
def test_scale_identity_returns_same_object(fn):
    assert scale_response_times(fn, 1.0) is fn


def test_scale_rejects_non_positive(fn):
    for bad in (0.0, -1.0):
        with pytest.raises(ValueError):
            scale_response_times(fn, bad)


def test_scale_stretches_only_non_local_points(fn):
    scaled = scale_response_times(fn, 2.0)
    assert scaled.points[0].response_time == 0.0
    assert scaled.points[0].benefit == 1.0
    assert scaled.points[1].response_time == pytest.approx(0.20)
    assert scaled.points[2].response_time == pytest.approx(0.50)
    # benefit values and per-level overrides survive
    assert [p.benefit for p in scaled.points] == [1.0, 2.0, 4.0]
    assert scaled.points[1].setup_time == 0.03
    assert scaled.points[2].label == "hi"


@given(factor=st.floats(min_value=0.05, max_value=20.0))
@settings(max_examples=50)
def test_scale_is_monotone_and_composable(factor):
    fn = BenefitFunction(
        [BenefitPoint(0.0, 0.5), BenefitPoint(0.1, 1.0),
         BenefitPoint(0.3, 2.0)]
    )
    scaled = scale_response_times(fn, factor)
    times = [p.response_time for p in scaled.points]
    assert times == sorted(times)
    assert all(math.isfinite(t) for t in times)
    back = scale_response_times(scaled, 1.0 / factor)
    for p, q in zip(fn.points, back.points):
        assert q.response_time == pytest.approx(p.response_time)


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
def test_task_round_trip(offload_task, local_task):
    for task in (offload_task, local_task):
        clone = task_from_dict(task_to_dict(task))
        assert task_to_dict(clone) == task_to_dict(task)
        assert type(clone) is type(task)


def test_request_round_trip(small_task_set):
    request = AdmissionRequest(
        request_id="r1",
        tasks=small_task_set,
        server_estimates={"edge": 1.1, "cloud": 0.9},
    )
    clone = AdmissionRequest.from_dict(request.to_dict())
    assert clone.to_dict() == request.to_dict()


def test_request_validation(small_task_set):
    with pytest.raises(ValueError):
        AdmissionRequest(request_id="", tasks=small_task_set)
    with pytest.raises(ValueError):
        AdmissionRequest(request_id="r", tasks=TaskSet())
    with pytest.raises(ValueError):
        AdmissionRequest(
            request_id="r", tasks=small_task_set,
            server_estimates={"edge": 0.0},
        )


def test_response_round_trip_and_views():
    response = AdmissionResponse(
        request_id="r1",
        status="admitted",
        placements={"a": ("edge", 0.2), "b": (None, 0.0)},
        expected_benefit=4.0,
        total_demand_rate=0.7,
        degradation="exact",
        solver="dp",
        allowed_servers={"edge": 1.0},
        latency=0.003,
        batch_size=4,
    )
    assert response.admitted
    assert response.response_times == {"a": 0.2, "b": 0.0}
    assert response.offloaded_task_ids == ["a"]
    clone = AdmissionResponse.from_dict(response.to_dict())
    assert clone.to_dict() == response.to_dict()
    assert clone.placements["b"] == (None, 0.0)


def test_response_rejects_unknown_status():
    with pytest.raises(ValueError):
        AdmissionResponse(request_id="r", status="maybe")


# ----------------------------------------------------------------------
# the per-request MCKP reduction
# ----------------------------------------------------------------------
def test_instance_has_one_class_per_task(small_task_set):
    request = AdmissionRequest(
        request_id="r", tasks=small_task_set,
        server_estimates={"edge": 1.0},
    )
    instance = build_request_instance(request, request.server_estimates)
    assert sorted(c.class_id for c in instance.classes) == sorted(
        t.task_id for t in small_task_set
    )
    # the non-offloadable task only has its mandatory local item
    local_cls = instance.class_by_id("loc1")
    assert len(local_cls.items) == 1
    assert local_cls.items[0].tag == (None, 0.0)
    # the offloadable one carries (server, r)-tagged items
    off_cls = instance.class_by_id("off1")
    assert len(off_cls.items) > 1
    assert {tag[0] for tag in (i.tag for i in off_cls.items)} <= {
        None, "edge",
    }


def test_empty_allowed_servers_leaves_local_items_only(small_task_set):
    request = AdmissionRequest(
        request_id="r", tasks=small_task_set,
        server_estimates={"edge": 1.0},
    )
    instance = build_request_instance(request, {})
    assert all(len(c.items) == 1 for c in instance.classes)
    assert all(c.items[0].tag == (None, 0.0) for c in instance.classes)


def test_slow_estimates_shrink_the_feasible_item_set(small_task_set):
    """A slower believed server stretches every candidate R_i, so items
    fall off the deadline cliff and per-item demand rates grow."""
    request = AdmissionRequest(
        request_id="r", tasks=small_task_set,
        server_estimates={"edge": 1.0},
    )
    fast = build_request_instance(request, {"edge": 1.0})
    slow = build_request_instance(request, {"edge": 20.0})
    fast_items = fast.class_by_id("off1").items
    slow_items = slow.class_by_id("off1").items
    assert len(slow_items) <= len(fast_items)
    fast_weights = {i.tag[1]: i.weight for i in fast_items if i.tag[1] > 0}
    for item in slow_items:
        server, r = item.tag
        if server is None:
            continue
        original_r = r / 20.0
        if original_r in fast_weights:
            assert item.weight >= fast_weights[original_r]

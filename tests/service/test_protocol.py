"""TCP wire protocol: serve_tcp <-> ServiceClient round-trips over a
real socket, including error replies and clean shutdown — plus the
binary-framing (wire v2) golden corpus and adversarial frame suite.

The golden constants below are COMMITTED BYTES, not recomputed: they
pin the wire format itself.  If a refactor changes them, old clients
break — bump :data:`~repro.service.WIRE_VERSION` instead of editing
the constants.
"""

import asyncio
import json
import socket

import numpy as np
import pytest

from repro.observability import Observability
from repro.service import (
    FLAG_MSGPACK,
    HAVE_MSGPACK,
    HEADER,
    MAGIC,
    WIRE_VERSION,
    AdmissionRequest,
    BatchPolicy,
    ConnectionLost,
    FrameError,
    ODMService,
    ServiceClient,
    TcpServerControl,
    decode_frame,
    encode_frame,
    serve_tcp,
)
from repro.service.protocol import decode_header, decode_payload
from repro.workloads.generator import random_offloading_task_set

#: One committed frame per protocol version for ``{"op": "stats"}``.
GOLDEN_V2_STATS = bytes.fromhex(
    "4f4402000000000e7b226f70223a227374617473227d"
)
GOLDEN_V2_SHUTDOWN = bytes.fromhex(
    "4f440200000000117b226f70223a2273687574646f776e227d"
)
GOLDEN_V1_STATS = b'{"op":"stats"}\n'
GOLDEN_V1_SHUTDOWN = b'{"op":"shutdown"}\n'


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def make_request(request_id="r1", seed=1):
    tasks = random_offloading_task_set(
        np.random.default_rng(seed), num_tasks=3, total_utilization=0.5
    )
    return AdmissionRequest(
        request_id=request_id,
        tasks=tasks,
        server_estimates={"edge": 1.0},
    )


def make_service():
    return ODMService(
        workers=1,
        batch_policy=BatchPolicy(max_batch=8, max_wait=0.001,
                                 queue_capacity=32),
    )


async def serving(port, service=None, **kwargs):
    """Start serve_tcp in the background; return the serve task."""
    kwargs.setdefault("duration", 30.0)
    task = asyncio.create_task(
        serve_tcp(
            service if service is not None else make_service(),
            port=port,
            ready_message=False,
            **kwargs,
        )
    )
    # wait for the listener to come up
    for _ in range(200):
        try:
            _r, w = await asyncio.open_connection("127.0.0.1", port)
            w.close()
            await w.wait_closed()
            return task
        except OSError:
            await asyncio.sleep(0.01)
    raise RuntimeError("server never came up")


def test_full_client_round_trip():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        async with ServiceClient(port=port) as client:
            responses = await asyncio.gather(
                *(
                    client.submit(make_request(f"r{i}", seed=i))
                    for i in range(5)
                )
            )
            await client.record_outcome("edge", True, 1.0)
            await client.record_outcome("edge", False, 2.0)
            breakers = await client.close_window()
            stats = await client.stats()
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return responses, breakers, stats

    responses, breakers, stats = asyncio.run(scenario())
    assert [r.request_id for r in responses] == [
        f"r{i}" for i in range(5)
    ]
    assert all(r.admitted for r in responses)
    assert breakers == {"edge": "closed"}
    assert stats["requests"] == 5
    assert stats["admitted"] == 5
    assert "cache" in stats and "breakers" in stats


def test_wire_errors_do_not_kill_the_connection():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def call(line):
            writer.write(line + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        bad_json = await call(b"{not json")
        unknown = await call(b'{"op": "frobnicate"}')
        bad_admit = await call(b'{"op": "admit"}')
        # the connection survives all three and still serves
        request = make_request("alive")
        good = await call(
            json.dumps(
                {"op": "admit", "request": request.to_dict()}
            ).encode()
        )
        bye = await call(b'{"op": "shutdown"}')
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return bad_json, unknown, bad_admit, good, bye

    bad_json, unknown, bad_admit, good, bye = asyncio.run(scenario())
    assert bad_json["op"] == "error"
    assert unknown["op"] == "error"
    assert "frobnicate" in unknown["error"]
    assert bad_admit["op"] == "error"
    assert good["op"] == "response"
    assert good["request_id"] == "alive"
    assert good["status"] == "admitted"
    assert bye["op"] == "bye"


def test_oversized_line_is_rejected_but_the_connection_survives():
    async def scenario():
        port = free_port()
        service = make_service()
        obs = Observability.enabled(profile=False)
        service.observability = obs
        serve_task = await serving(port, service=service, max_line=8192)
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port, limit=1 << 20
        )

        async def call(line):
            writer.write(line + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        huge = await call(
            b'{"op": "admit", "pad": "' + b"x" * 65536 + b'"}'
        )
        # the connection drained the junk and still serves
        request = make_request("survivor")
        good = await call(
            json.dumps(
                {"op": "admit", "request": request.to_dict()}
            ).encode()
        )
        await call(b'{"op": "shutdown"}')
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return huge, good, obs.bus.events("service.wire_error")

    huge, good, events = asyncio.run(scenario())
    assert huge["op"] == "error"
    assert "maximum length" in huge["error"]
    assert good["op"] == "response"
    assert good["request_id"] == "survivor"
    assert len(events) == 1


def test_non_object_json_record_is_a_wire_error():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def call(line):
            writer.write(line + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        array = await call(b"[1, 2, 3]")
        scalar = await call(b'"admit"')
        bye = await call(b'{"op": "shutdown"}')
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return array, scalar, bye

    array, scalar, bye = asyncio.run(scenario())
    assert array["op"] == "error"
    assert "JSON object" in array["error"]
    assert scalar["op"] == "error"
    assert bye["op"] == "bye"


def test_gossip_op_returns_the_replica_beacon():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        async with ServiceClient(port=port) as client:
            await client.record_outcome("edge", True, 1.0)
            beacon = await client.gossip()
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return beacon

    beacon = asyncio.run(scenario())
    assert beacon["replica_id"] == "replica-0"
    assert beacon["seq"] >= 1
    assert beacon["breakers"] == {"edge": "closed"}
    assert "queue_depth" in beacon and "queue_capacity" in beacon


def test_abort_fails_in_flight_requests_fast():
    async def scenario():
        port = free_port()
        service = make_service()
        control = TcpServerControl()
        serve_task = await serving(
            port, service=service, control=control
        )
        await control.ready.wait()
        client = await ServiceClient(port=port).connect()
        original = service.shard_solver.solve_batch

        def slow(entries):
            import time

            time.sleep(0.5)
            return original(entries)

        service.shard_solver.solve_batch = slow
        submit = asyncio.create_task(client.submit(make_request("doomed")))
        await asyncio.sleep(0.05)
        control.abort()  # RST every live connection, as a crash would
        try:
            # bounded by the reset, not by any request timeout
            await asyncio.wait_for(submit, timeout=5.0)
        except ConnectionLost:
            lost = True
        else:
            lost = False
        await client.close()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return lost

    assert asyncio.run(scenario())


def test_per_request_timeout_raises_without_killing_the_client():
    async def scenario():
        port = free_port()
        service = make_service()
        serve_task = await serving(port, service=service)
        original = service.shard_solver.solve_batch
        stall = {"seconds": 0.5}

        def slow(entries):
            import time

            time.sleep(stall["seconds"])
            return original(entries)

        service.shard_solver.solve_batch = slow
        async with ServiceClient(port=port) as client:
            timed_out = False
            try:
                await client.submit(make_request("slow"), timeout=0.05)
            except asyncio.TimeoutError:
                timed_out = True
            # the connection itself is still healthy for later calls
            stall["seconds"] = 0.0
            response = await client.submit(
                make_request("quick", seed=2), timeout=5.0
            )
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return timed_out, response

    timed_out, response = asyncio.run(scenario())
    assert timed_out
    assert response.request_id == "quick"
    assert response.admitted


def test_duration_cap_stops_a_quiet_server():
    async def scenario():
        port = free_port()
        service = make_service()
        await asyncio.wait_for(
            serve_tcp(
                service, port=port, duration=0.2, ready_message=False
            ),
            timeout=10.0,
        )
        return service

    service = asyncio.run(scenario())
    assert not service.started  # stopped cleanly on the way out


# ----------------------------------------------------------------------
# wire v2: golden corpus
# ----------------------------------------------------------------------
async def read_v2_frame(reader):
    """One v2 frame off a raw stream → decoded record."""
    header = await reader.readexactly(HEADER.size)
    _, flags, length = decode_header(header)
    return decode_payload(flags, await reader.readexactly(length))


class TestGoldenFrames:
    def test_header_layout_is_pinned(self):
        assert MAGIC == b"OD"
        assert WIRE_VERSION == 2
        assert FLAG_MSGPACK == 0x01
        assert HEADER.size == 8
        assert HEADER.format == ">2sBBI"

    def test_encoder_reproduces_the_committed_bytes(self):
        assert encode_frame({"op": "stats"}) == GOLDEN_V2_STATS
        assert encode_frame({"op": "shutdown"}) == GOLDEN_V2_SHUTDOWN

    def test_golden_frames_decode(self):
        record, consumed = decode_frame(GOLDEN_V2_STATS)
        assert record == {"op": "stats"}
        assert consumed == len(GOLDEN_V2_STATS)
        # trailing bytes of the next frame are not consumed
        record, consumed = decode_frame(
            GOLDEN_V2_STATS + GOLDEN_V2_SHUTDOWN
        )
        assert record == {"op": "stats"}
        assert consumed == len(GOLDEN_V2_STATS)

    def test_incomplete_buffers_decode_to_none(self):
        for cut in range(len(GOLDEN_V2_STATS)):
            assert decode_frame(GOLDEN_V2_STATS[:cut]) == (None, 0)

    def test_bad_magic_raises(self):
        with pytest.raises(FrameError):
            decode_frame(b"OX" + GOLDEN_V2_STATS[2:])

    def test_future_version_raises(self):
        doctored = bytearray(GOLDEN_V2_STATS)
        doctored[2] = WIRE_VERSION + 1
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(doctored))

    def test_non_object_payload_raises(self):
        with pytest.raises(FrameError, match="object"):
            decode_frame(encode_frame({})[:4] + b"\x00\x00\x00\x03[1]")

    def test_golden_frames_drive_a_live_server_mixed_with_v1(self):
        """Mixed-version pipelining: v1 line, v2 frame, v1 line, v2
        shutdown on ONE connection — each reply in its request's
        framing."""

        async def scenario():
            port = free_port()
            serve_task = await serving(port)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(
                GOLDEN_V1_STATS + GOLDEN_V2_STATS + GOLDEN_V1_STATS
                + GOLDEN_V2_SHUTDOWN
            )
            await writer.drain()
            line1 = json.loads(await reader.readline())
            framed = await read_v2_frame(reader)
            line2 = json.loads(await reader.readline())
            bye = await read_v2_frame(reader)
            assert await reader.read() == b""  # server closed after bye
            writer.close()
            await writer.wait_closed()
            await asyncio.wait_for(serve_task, timeout=10.0)
            return line1, framed, line2, bye

        line1, framed, line2, bye = asyncio.run(scenario())
        for reply in (line1, framed, line2):
            assert reply["op"] == "stats"
            assert "requests" in reply
        assert bye == {"op": "bye"}


# ----------------------------------------------------------------------
# wire v2: adversarial frames
# ----------------------------------------------------------------------
class TestAdversarialFrames:
    def run_raw(self, payload_bytes, *, max_line=1 << 20, reads=1):
        """Send raw bytes to a live server; collect ``reads`` v2
        replies, then check the server still serves a fresh client."""

        async def scenario():
            port = free_port()
            serve_task = await serving(port, max_line=max_line)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port, limit=1 << 21
            )
            writer.write(payload_bytes)
            await writer.drain()
            # half-close: the server sees EOF after our bytes, so a
            # frame truncated *at EOF* is distinguishable from one the
            # server should keep waiting for
            writer.write_eof()
            replies = [
                await asyncio.wait_for(read_v2_frame(reader), 10.0)
                for _ in range(reads)
            ]
            eof = await asyncio.wait_for(reader.read(), 10.0) == b""
            writer.close()
            await writer.wait_closed()
            # a brand-new client must still get service
            async with ServiceClient(port=port) as client:
                stats = await client.stats()
                await client.shutdown()
            await asyncio.wait_for(serve_task, timeout=10.0)
            return replies, eof, stats

        return asyncio.run(scenario())

    def test_truncated_header_closes_quietly(self):
        replies, eof, stats = self.run_raw(MAGIC + b"\x02", reads=0)
        assert replies == [] and eof
        assert "requests" in stats

    def test_truncated_payload_closes_quietly(self):
        short = HEADER.pack(MAGIC, WIRE_VERSION, 0, 100) + b"x" * 10
        replies, eof, stats = self.run_raw(short, reads=0)
        assert replies == [] and eof
        assert "requests" in stats

    def test_bad_magic_errors_and_closes(self):
        frame = b"OX" + GOLDEN_V2_STATS[2:]
        replies, eof, _ = self.run_raw(frame, reads=1)
        assert replies[0]["op"] == "error"
        assert "magic" in replies[0]["error"]
        assert eof  # binary garbage cannot be resynced: close

    def test_unsupported_version_errors_and_closes(self):
        frame = HEADER.pack(MAGIC, 9, 0, 2) + b"{}"
        replies, eof, _ = self.run_raw(frame, reads=1)
        assert replies[0]["op"] == "error"
        assert "version 9" in replies[0]["error"]
        assert eof

    def test_oversized_frame_is_skipped_exactly(self):
        """The declared length lets the server hop over the junk and
        land exactly on the next frame — connection stays usable."""
        junk = HEADER.pack(MAGIC, WIRE_VERSION, 0, 65536) + b"j" * 65536
        replies, eof, _ = self.run_raw(
            junk + GOLDEN_V2_STATS, max_line=8192, reads=2
        )
        assert replies[0]["op"] == "error"
        assert "maximum length" in replies[0]["error"]
        assert replies[1]["op"] == "stats"

    def test_garbage_payload_in_a_valid_frame_survives(self):
        garbage = HEADER.pack(MAGIC, WIRE_VERSION, 0, 9) + b"\xffnot-json"
        replies, _, _ = self.run_raw(garbage + GOLDEN_V2_STATS, reads=2)
        assert replies[0]["op"] == "error"
        assert replies[1]["op"] == "stats"

    @pytest.mark.skipif(
        HAVE_MSGPACK, reason="msgpack installed: flag is honoured"
    )
    def test_msgpack_flag_without_msgpack_is_a_structured_error(self):
        frame = HEADER.pack(MAGIC, WIRE_VERSION, FLAG_MSGPACK, 2) + b"{}"
        replies, _, _ = self.run_raw(frame + GOLDEN_V2_STATS, reads=2)
        assert replies[0]["op"] == "error"
        assert "msgpack" in replies[0]["error"]
        assert replies[1]["op"] == "stats"


# ----------------------------------------------------------------------
# client modes: legacy v1 regression pin + batch admission
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["binary", "json"])
def test_client_round_trip_in_both_protocols(protocol):
    async def scenario():
        port = free_port()
        obs = Observability.enabled(profile=False)
        service = ODMService(
            workers=1,
            batch_policy=BatchPolicy(
                max_batch=8, max_wait=0.001, queue_capacity=32
            ),
            observability=obs,
        )
        serve_task = await serving(port, service=service)
        async with ServiceClient(port=port, protocol=protocol) as client:
            response = await client.submit(make_request("pinned"))
            stats = await client.stats()
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10.0)
        lines = obs.metrics.value("service.wire_lines")
        frames = obs.metrics.value("service.wire_frames")
        return response, stats, lines, frames

    response, stats, lines, frames = asyncio.run(scenario())
    assert response.request_id == "pinned"
    assert response.admitted
    assert stats["requests"] == 1
    # the framing actually used is observable, so the legacy pin cannot
    # silently start speaking v2
    if protocol == "json":
        assert lines >= 3 and frames == 0
    else:
        assert frames >= 3 and lines == 0


@pytest.mark.parametrize("protocol", ["binary", "json"])
def test_submit_batch_round_trip(protocol):
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        async with ServiceClient(port=port, protocol=protocol) as client:
            empty = await client.submit_batch([])
            requests = [
                make_request(f"b{i}", seed=i) for i in range(6)
            ]
            responses = await client.submit_batch(requests)
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return empty, responses

    empty, responses = asyncio.run(scenario())
    assert empty == []
    assert [r.request_id for r in responses] == [
        f"b{i}" for i in range(6)
    ]
    assert all(r.admitted for r in responses)


def test_admit_batch_rejects_malformed_batches():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def call(record):
            writer.write(encode_frame(record))
            await writer.drain()
            return await read_v2_frame(reader)

        not_a_list = await call(
            {"op": "admit_batch", "requests": "nope"}
        )
        empty = await call({"op": "admit_batch", "requests": []})
        bad_entry = await call(
            {"op": "admit_batch", "requests": [{"bogus": 1}]}
        )
        bye = await call({"op": "shutdown"})
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return not_a_list, empty, bad_entry, bye

    not_a_list, empty, bad_entry, bye = asyncio.run(scenario())
    assert not_a_list["op"] == "error"
    assert empty["op"] == "error"
    assert bad_entry["op"] == "error"
    assert bye == {"op": "bye"}

"""TCP wire protocol: serve_tcp <-> ServiceClient round-trips over a
real socket, including error replies and clean shutdown."""

import asyncio
import json
import socket

import numpy as np

from repro.service import (
    AdmissionRequest,
    BatchPolicy,
    ODMService,
    ServiceClient,
    serve_tcp,
)
from repro.workloads.generator import random_offloading_task_set


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def make_request(request_id="r1", seed=1):
    tasks = random_offloading_task_set(
        np.random.default_rng(seed), num_tasks=3, total_utilization=0.5
    )
    return AdmissionRequest(
        request_id=request_id,
        tasks=tasks,
        server_estimates={"edge": 1.0},
    )


def make_service():
    return ODMService(
        workers=1,
        batch_policy=BatchPolicy(max_batch=8, max_wait=0.001,
                                 queue_capacity=32),
    )


async def serving(port):
    """Start serve_tcp in the background; return the serve task."""
    task = asyncio.create_task(
        serve_tcp(
            make_service(), port=port, duration=30.0,
            ready_message=False,
        )
    )
    # wait for the listener to come up
    for _ in range(200):
        try:
            _r, w = await asyncio.open_connection("127.0.0.1", port)
            w.close()
            await w.wait_closed()
            return task
        except OSError:
            await asyncio.sleep(0.01)
    raise RuntimeError("server never came up")


def test_full_client_round_trip():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        async with ServiceClient(port=port) as client:
            responses = await asyncio.gather(
                *(
                    client.submit(make_request(f"r{i}", seed=i))
                    for i in range(5)
                )
            )
            await client.record_outcome("edge", True, 1.0)
            await client.record_outcome("edge", False, 2.0)
            breakers = await client.close_window()
            stats = await client.stats()
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return responses, breakers, stats

    responses, breakers, stats = asyncio.run(scenario())
    assert [r.request_id for r in responses] == [
        f"r{i}" for i in range(5)
    ]
    assert all(r.admitted for r in responses)
    assert breakers == {"edge": "closed"}
    assert stats["requests"] == 5
    assert stats["admitted"] == 5
    assert "cache" in stats and "breakers" in stats


def test_wire_errors_do_not_kill_the_connection():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def call(line):
            writer.write(line + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        bad_json = await call(b"{not json")
        unknown = await call(b'{"op": "frobnicate"}')
        bad_admit = await call(b'{"op": "admit"}')
        # the connection survives all three and still serves
        request = make_request("alive")
        good = await call(
            json.dumps(
                {"op": "admit", "request": request.to_dict()}
            ).encode()
        )
        bye = await call(b'{"op": "shutdown"}')
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return bad_json, unknown, bad_admit, good, bye

    bad_json, unknown, bad_admit, good, bye = asyncio.run(scenario())
    assert bad_json["op"] == "error"
    assert unknown["op"] == "error"
    assert "frobnicate" in unknown["error"]
    assert bad_admit["op"] == "error"
    assert good["op"] == "response"
    assert good["request_id"] == "alive"
    assert good["status"] == "admitted"
    assert bye["op"] == "bye"


def test_duration_cap_stops_a_quiet_server():
    async def scenario():
        port = free_port()
        service = make_service()
        await asyncio.wait_for(
            serve_tcp(
                service, port=port, duration=0.2, ready_message=False
            ),
            timeout=10.0,
        )
        return service

    service = asyncio.run(scenario())
    assert not service.started  # stopped cleanly on the way out

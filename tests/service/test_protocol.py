"""TCP wire protocol: serve_tcp <-> ServiceClient round-trips over a
real socket, including error replies and clean shutdown."""

import asyncio
import json
import socket

import numpy as np

from repro.observability import Observability
from repro.service import (
    AdmissionRequest,
    BatchPolicy,
    ConnectionLost,
    ODMService,
    ServiceClient,
    TcpServerControl,
    serve_tcp,
)
from repro.workloads.generator import random_offloading_task_set


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def make_request(request_id="r1", seed=1):
    tasks = random_offloading_task_set(
        np.random.default_rng(seed), num_tasks=3, total_utilization=0.5
    )
    return AdmissionRequest(
        request_id=request_id,
        tasks=tasks,
        server_estimates={"edge": 1.0},
    )


def make_service():
    return ODMService(
        workers=1,
        batch_policy=BatchPolicy(max_batch=8, max_wait=0.001,
                                 queue_capacity=32),
    )


async def serving(port, service=None, **kwargs):
    """Start serve_tcp in the background; return the serve task."""
    kwargs.setdefault("duration", 30.0)
    task = asyncio.create_task(
        serve_tcp(
            service if service is not None else make_service(),
            port=port,
            ready_message=False,
            **kwargs,
        )
    )
    # wait for the listener to come up
    for _ in range(200):
        try:
            _r, w = await asyncio.open_connection("127.0.0.1", port)
            w.close()
            await w.wait_closed()
            return task
        except OSError:
            await asyncio.sleep(0.01)
    raise RuntimeError("server never came up")


def test_full_client_round_trip():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        async with ServiceClient(port=port) as client:
            responses = await asyncio.gather(
                *(
                    client.submit(make_request(f"r{i}", seed=i))
                    for i in range(5)
                )
            )
            await client.record_outcome("edge", True, 1.0)
            await client.record_outcome("edge", False, 2.0)
            breakers = await client.close_window()
            stats = await client.stats()
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return responses, breakers, stats

    responses, breakers, stats = asyncio.run(scenario())
    assert [r.request_id for r in responses] == [
        f"r{i}" for i in range(5)
    ]
    assert all(r.admitted for r in responses)
    assert breakers == {"edge": "closed"}
    assert stats["requests"] == 5
    assert stats["admitted"] == 5
    assert "cache" in stats and "breakers" in stats


def test_wire_errors_do_not_kill_the_connection():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def call(line):
            writer.write(line + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        bad_json = await call(b"{not json")
        unknown = await call(b'{"op": "frobnicate"}')
        bad_admit = await call(b'{"op": "admit"}')
        # the connection survives all three and still serves
        request = make_request("alive")
        good = await call(
            json.dumps(
                {"op": "admit", "request": request.to_dict()}
            ).encode()
        )
        bye = await call(b'{"op": "shutdown"}')
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return bad_json, unknown, bad_admit, good, bye

    bad_json, unknown, bad_admit, good, bye = asyncio.run(scenario())
    assert bad_json["op"] == "error"
    assert unknown["op"] == "error"
    assert "frobnicate" in unknown["error"]
    assert bad_admit["op"] == "error"
    assert good["op"] == "response"
    assert good["request_id"] == "alive"
    assert good["status"] == "admitted"
    assert bye["op"] == "bye"


def test_oversized_line_is_rejected_but_the_connection_survives():
    async def scenario():
        port = free_port()
        service = make_service()
        obs = Observability.enabled(profile=False)
        service.observability = obs
        serve_task = await serving(port, service=service, max_line=8192)
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port, limit=1 << 20
        )

        async def call(line):
            writer.write(line + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        huge = await call(
            b'{"op": "admit", "pad": "' + b"x" * 65536 + b'"}'
        )
        # the connection drained the junk and still serves
        request = make_request("survivor")
        good = await call(
            json.dumps(
                {"op": "admit", "request": request.to_dict()}
            ).encode()
        )
        await call(b'{"op": "shutdown"}')
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return huge, good, obs.bus.events("service.wire_error")

    huge, good, events = asyncio.run(scenario())
    assert huge["op"] == "error"
    assert "maximum length" in huge["error"]
    assert good["op"] == "response"
    assert good["request_id"] == "survivor"
    assert len(events) == 1


def test_non_object_json_record_is_a_wire_error():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def call(line):
            writer.write(line + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        array = await call(b"[1, 2, 3]")
        scalar = await call(b'"admit"')
        bye = await call(b'{"op": "shutdown"}')
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return array, scalar, bye

    array, scalar, bye = asyncio.run(scenario())
    assert array["op"] == "error"
    assert "JSON object" in array["error"]
    assert scalar["op"] == "error"
    assert bye["op"] == "bye"


def test_gossip_op_returns_the_replica_beacon():
    async def scenario():
        port = free_port()
        serve_task = await serving(port)
        async with ServiceClient(port=port) as client:
            await client.record_outcome("edge", True, 1.0)
            beacon = await client.gossip()
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return beacon

    beacon = asyncio.run(scenario())
    assert beacon["replica_id"] == "replica-0"
    assert beacon["seq"] >= 1
    assert beacon["breakers"] == {"edge": "closed"}
    assert "queue_depth" in beacon and "queue_capacity" in beacon


def test_abort_fails_in_flight_requests_fast():
    async def scenario():
        port = free_port()
        service = make_service()
        control = TcpServerControl()
        serve_task = await serving(
            port, service=service, control=control
        )
        await control.ready.wait()
        client = await ServiceClient(port=port).connect()
        original = service.shard_solver.solve_batch

        def slow(entries):
            import time

            time.sleep(0.5)
            return original(entries)

        service.shard_solver.solve_batch = slow
        submit = asyncio.create_task(client.submit(make_request("doomed")))
        await asyncio.sleep(0.05)
        control.abort()  # RST every live connection, as a crash would
        try:
            # bounded by the reset, not by any request timeout
            await asyncio.wait_for(submit, timeout=5.0)
        except ConnectionLost:
            lost = True
        else:
            lost = False
        await client.close()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return lost

    assert asyncio.run(scenario())


def test_per_request_timeout_raises_without_killing_the_client():
    async def scenario():
        port = free_port()
        service = make_service()
        serve_task = await serving(port, service=service)
        original = service.shard_solver.solve_batch
        stall = {"seconds": 0.5}

        def slow(entries):
            import time

            time.sleep(stall["seconds"])
            return original(entries)

        service.shard_solver.solve_batch = slow
        async with ServiceClient(port=port) as client:
            timed_out = False
            try:
                await client.submit(make_request("slow"), timeout=0.05)
            except asyncio.TimeoutError:
                timed_out = True
            # the connection itself is still healthy for later calls
            stall["seconds"] = 0.0
            response = await client.submit(
                make_request("quick", seed=2), timeout=5.0
            )
            await client.shutdown()
        await asyncio.wait_for(serve_task, timeout=10.0)
        return timed_out, response

    timed_out, response = asyncio.run(scenario())
    assert timed_out
    assert response.request_id == "quick"
    assert response.admitted


def test_duration_cap_stops_a_quiet_server():
    async def scenario():
        port = free_port()
        service = make_service()
        await asyncio.wait_for(
            serve_tcp(
                service, port=port, duration=0.2, ready_message=False
            ),
            timeout=10.0,
        )
        return service

    service = asyncio.run(scenario())
    assert not service.started  # stopped cleanly on the way out

"""Loadgen traffic shaping: churn, batch submission, determinism.

The churn knob exists to feed the delta solver near-miss instances,
so these tests pin its safety property (only task *weights* move —
MCKP item values, never weights, so admissibility is untouched) and
that the whole loadgen run stays deterministic and audit-clean through
both the per-request and the vectorized ``submit_batch`` paths.
"""

import asyncio

import pytest

from repro.service import (
    BatchPolicy,
    LoadGenConfig,
    ODMService,
    generate_bursts,
    run_loadgen,
)


def config(**overrides):
    base = dict(seed=3, bursts=6, mean_burst_size=3.0, unique_sets=3,
                num_tasks=4)
    base.update(overrides)
    return LoadGenConfig(**base)


class TestChurnedBursts:
    def test_churn_rate_is_validated(self):
        with pytest.raises(ValueError):
            config(churn_rate=-0.1)
        with pytest.raises(ValueError):
            config(churn_rate=1.5)

    def test_zero_churn_draws_only_pool_sets(self):
        bursts = generate_bursts(config(churn_rate=0.0))
        signatures = {
            tuple(task.task_id for task in request.tasks)
            for burst in bursts
            for request in burst.requests
        }
        task_sets = {
            id(request.tasks)
            for burst in bursts
            for request in burst.requests
        }
        # a 3-set pool serves every request object-identically
        assert len(task_sets) <= 3
        assert len(signatures) <= 3

    def test_churn_perturbs_only_one_weight(self):
        plain = generate_bursts(config(churn_rate=0.0))
        churned = generate_bursts(config(churn_rate=1.0))
        # pool sets all reuse the same task ids, so find each churned
        # request's ancestor as the pool set it differs least from
        pool = []
        for burst in plain:
            for request in burst.requests:
                if all(request.tasks is not seen for seen in pool):
                    pool.append(request.tasks)
        churned_requests = [
            request for burst in churned for request in burst.requests
        ]
        assert churned_requests
        for request in churned_requests:
            diffs = min(
                (
                    [
                        (old, new)
                        for old, new in zip(ancestor, request.tasks)
                        if old != new
                    ]
                    for ancestor in pool
                    if len(ancestor) == len(request.tasks)
                ),
                key=len,
            )
            assert len(diffs) <= 1
            for old, new in diffs:
                # only the benefit weight moved, and only by the
                # documented 0.8..1.2 factor
                assert new.wcet == old.wcet
                assert new.period == old.period
                assert new.benefit == old.benefit
                assert 0.8 * old.weight <= new.weight <= 1.2 * old.weight

    def test_same_seed_same_trace(self):
        first = generate_bursts(config(churn_rate=0.5))
        second = generate_bursts(config(churn_rate=0.5))
        assert [
            [request.to_dict() for request in burst.requests]
            for burst in first
        ] == [
            [request.to_dict() for request in burst.requests]
            for burst in second
        ]


@pytest.mark.parametrize("batched", [False, True])
def test_in_process_run_is_audit_clean(batched):
    """Churned traffic through the real service — per-request and
    vectorized submission must agree with the serial reference."""

    async def scenario():
        service = ODMService(
            workers=1,
            batch_policy=BatchPolicy(
                max_batch=8, max_wait=0.001, queue_capacity=64
            ),
        )
        async with service:

            async def submit_batch(requests):
                return list(
                    await asyncio.gather(
                        *(service.submit(r) for r in requests)
                    )
                )

            return await run_loadgen(
                service.submit,
                config(churn_rate=0.4),
                record_outcome=service.record_outcome,
                close_window=service.close_health_window,
                stats=service.stats,
                resolution=2_000,
                submit_batch=submit_batch if batched else None,
            )

    report = asyncio.run(scenario())
    assert report.ok
    assert report.anomaly_count == 0
    assert report.requests == report.admitted + report.rejected
    assert report.stats is not None
    assert "delta" in report.stats


# ----------------------------------------------------------------------
# open-loop (arrival-rate-driven) traffic
# ----------------------------------------------------------------------
from types import SimpleNamespace

from repro.service import (
    OpenLoopConfig,
    generate_open_loop,
    run_open_loop,
)


def ol_config(**overrides):
    base = dict(
        seed=7,
        rate=10_000.0,
        requests=24,
        dispatch_scale=0.01,
        unique_sets=3,
        num_tasks=4,
    )
    base.update(overrides)
    return OpenLoopConfig(**base)


class TestOpenLoopTrace:
    def test_config_is_validated(self):
        with pytest.raises(ValueError):
            ol_config(rate=0.0)
        with pytest.raises(ValueError):
            ol_config(rate_multiplier=-1.0)
        with pytest.raises(ValueError):
            ol_config(dispatch_scale=0.0)
        with pytest.raises(ValueError):
            ol_config(requests=0)
        with pytest.raises(ValueError):
            ol_config(churn_rate=1.5)

    def test_trace_is_replayable(self):
        first = generate_open_loop(ol_config(churn_rate=0.3))
        again = generate_open_loop(ol_config(churn_rate=0.3))
        assert [offset for offset, _ in first] == [
            offset for offset, _ in again
        ]
        for (_, a), (_, b) in zip(first, again):
            assert a.request_id == b.request_id
            assert a.server_estimates == b.server_estimates
            assert [t.task_id for t in a.tasks] == [
                t.task_id for t in b.tasks
            ]
        different = generate_open_loop(ol_config(seed=8))
        assert [o for o, _ in different] != [o for o, _ in first]

    def test_offsets_are_increasing_and_dilated(self):
        trace = generate_open_loop(ol_config())
        offsets = [offset for offset, _ in trace]
        assert offsets == sorted(offsets)
        assert all(offset > 0 for offset in offsets)

    def test_rate_multiplier_compresses_the_same_gap_sequence(self):
        """x4 load is the *same* seeded process played 4x faster."""
        base = generate_open_loop(ol_config())
        fast = generate_open_loop(ol_config(rate_multiplier=4.0))
        for (slow_offset, a), (fast_offset, b) in zip(base, fast):
            assert fast_offset == pytest.approx(slow_offset / 4.0)
            assert a.request_id == b.request_id

    def test_explicit_pool_feeds_every_request(self):
        donor = generate_open_loop(ol_config())[0][1].tasks
        trace = generate_open_loop(ol_config(), pool=[donor])
        assert {id(request.tasks) for _, request in trace} == {id(donor)}
        with pytest.raises(ValueError):
            generate_open_loop(ol_config(), pool=[])


class TestOpenLoopRun:
    def test_in_process_run_is_audit_clean(self):
        async def scenario():
            service = ODMService(
                workers=1,
                batch_policy=BatchPolicy(
                    max_batch=8, max_wait=0.0005, queue_capacity=64
                ),
                resolution=20_000,
            )
            async with service:
                return await run_open_loop(
                    service.submit,
                    ol_config(churn_rate=0.3),
                    resolution=20_000,
                    stats=service.stats,
                )

        report = asyncio.run(scenario())
        assert report.ok and report.anomaly_count == 0
        assert report.completed == report.requests == 24
        assert report.errors == 0
        assert len(report.latencies) == report.admitted + report.rejected
        assert report.throughput > 0
        assert report.stats["cache"]["hits"] + report.stats["cache"][
            "misses"
        ] > 0
        record = report.to_dict()
        assert record["latency"]["p99"] >= record["latency"]["p50"] >= 0

    def test_submit_errors_pay_their_slot(self):
        async def scenario():
            calls = [0]

            async def flaky_submit(request):
                calls[0] += 1
                if calls[0] % 3 == 0:
                    raise ConnectionError("router gave up")
                return SimpleNamespace(status="shed")

            return await run_open_loop(
                flaky_submit, ol_config(requests=9, audit=False)
            )

        report = asyncio.run(scenario())
        assert report.requests == 9
        assert report.errors == 3
        assert report.shed == 6
        assert report.completed == 6
        assert report.latencies == []  # shed = no decision, no latency

"""Loadgen traffic shaping: churn, batch submission, determinism.

The churn knob exists to feed the delta solver near-miss instances,
so these tests pin its safety property (only task *weights* move —
MCKP item values, never weights, so admissibility is untouched) and
that the whole loadgen run stays deterministic and audit-clean through
both the per-request and the vectorized ``submit_batch`` paths.
"""

import asyncio

import pytest

from repro.service import (
    BatchPolicy,
    LoadGenConfig,
    ODMService,
    generate_bursts,
    run_loadgen,
)


def config(**overrides):
    base = dict(seed=3, bursts=6, mean_burst_size=3.0, unique_sets=3,
                num_tasks=4)
    base.update(overrides)
    return LoadGenConfig(**base)


class TestChurnedBursts:
    def test_churn_rate_is_validated(self):
        with pytest.raises(ValueError):
            config(churn_rate=-0.1)
        with pytest.raises(ValueError):
            config(churn_rate=1.5)

    def test_zero_churn_draws_only_pool_sets(self):
        bursts = generate_bursts(config(churn_rate=0.0))
        signatures = {
            tuple(task.task_id for task in request.tasks)
            for burst in bursts
            for request in burst.requests
        }
        task_sets = {
            id(request.tasks)
            for burst in bursts
            for request in burst.requests
        }
        # a 3-set pool serves every request object-identically
        assert len(task_sets) <= 3
        assert len(signatures) <= 3

    def test_churn_perturbs_only_one_weight(self):
        plain = generate_bursts(config(churn_rate=0.0))
        churned = generate_bursts(config(churn_rate=1.0))
        # pool sets all reuse the same task ids, so find each churned
        # request's ancestor as the pool set it differs least from
        pool = []
        for burst in plain:
            for request in burst.requests:
                if all(request.tasks is not seen for seen in pool):
                    pool.append(request.tasks)
        churned_requests = [
            request for burst in churned for request in burst.requests
        ]
        assert churned_requests
        for request in churned_requests:
            diffs = min(
                (
                    [
                        (old, new)
                        for old, new in zip(ancestor, request.tasks)
                        if old != new
                    ]
                    for ancestor in pool
                    if len(ancestor) == len(request.tasks)
                ),
                key=len,
            )
            assert len(diffs) <= 1
            for old, new in diffs:
                # only the benefit weight moved, and only by the
                # documented 0.8..1.2 factor
                assert new.wcet == old.wcet
                assert new.period == old.period
                assert new.benefit == old.benefit
                assert 0.8 * old.weight <= new.weight <= 1.2 * old.weight

    def test_same_seed_same_trace(self):
        first = generate_bursts(config(churn_rate=0.5))
        second = generate_bursts(config(churn_rate=0.5))
        assert [
            [request.to_dict() for request in burst.requests]
            for burst in first
        ] == [
            [request.to_dict() for request in burst.requests]
            for burst in second
        ]


@pytest.mark.parametrize("batched", [False, True])
def test_in_process_run_is_audit_clean(batched):
    """Churned traffic through the real service — per-request and
    vectorized submission must agree with the serial reference."""

    async def scenario():
        service = ODMService(
            workers=1,
            batch_policy=BatchPolicy(
                max_batch=8, max_wait=0.001, queue_capacity=64
            ),
        )
        async with service:

            async def submit_batch(requests):
                return list(
                    await asyncio.gather(
                        *(service.submit(r) for r in requests)
                    )
                )

            return await run_loadgen(
                service.submit,
                config(churn_rate=0.4),
                record_outcome=service.record_outcome,
                close_window=service.close_health_window,
                stats=service.stats,
                resolution=2_000,
                submit_batch=submit_batch if batched else None,
            )

    report = asyncio.run(scenario())
    assert report.ok
    assert report.anomaly_count == 0
    assert report.requests == report.admitted + report.rejected
    assert report.stats is not None
    assert "delta" in report.stats

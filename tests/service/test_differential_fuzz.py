"""Differential fuzzing of the service solve paths (satellite suite).

Two contracts are pinned over a 300+ instance corpus:

1. **Optimum equivalence vs the oracle.**  The vectorized ``solve_dp``
   and the serial reference ``solve_dp_reference`` are two exact DPs
   over the same quantized weights, so they must agree on feasibility,
   on the optimal value, and on the (minimal) quantized weight of the
   optimum.  They may legitimately return *different argmaxes* when
   several selections tie: the reference iterates raw items
   first-index-wins, while ``solve_dp`` prunes dominated items first —
   so bit-identical choices are only guaranteed when the optimum is
   unique, which the adversarial sub-corpus deliberately violates.

2. **Bit-identity of every service fast path vs the serial solve.**
   The :class:`SolverCache` hit path, in-batch deduplication, the
   sharded process-pool path, and the warm-start delta path (scratch,
   exact cached hit, and near-miss partial hit — see
   ``test_every_solver_path_is_bit_identical``) are pure plumbing
   around ``solve_dp``; their answers must be *bit-identical* (same
   choices dict, same totals) to calling ``solve_dp`` serially on the
   same instance — on ties included, which is exactly where plumbing
   bugs would surface.

The corpus includes adversarial near-ties: weights offset from integer
quantization-grid points by ±0.49/R and ±0.51/R so quantized weights
straddle the ceil boundary, plus tiny integer values that force
equal-value optima.
"""

import random

import pytest

from repro.knapsack import (
    MCKPClass,
    MCKPInstance,
    MCKPItem,
    SolverCache,
    solve_dp,
    solve_dp_reference,
)
from repro.knapsack.dp import _quantize_weight
from repro.parallel import SweepRunner
from repro.service import ShardSolver

RESOLUTION = 1_000
PLAIN_COUNT = 200
ADVERSARIAL_COUNT = 100


def plain_instance(rng: random.Random) -> MCKPInstance:
    classes = []
    for index in range(rng.randint(2, 5)):
        items = tuple(
            MCKPItem(
                # integer-valued floats: sums are exact, so optimal
                # values can be compared with == across solvers
                value=float(rng.randint(0, 50)),
                weight=rng.uniform(0.0, 12.0),
            )
            for _ in range(rng.randint(2, 5))
        )
        classes.append(MCKPClass(f"c{index}", items))
    return MCKPInstance(classes=tuple(classes), capacity=20.0)


def adversarial_instance(rng: random.Random) -> MCKPInstance:
    """Weights hugging the quantization grid; values full of ties."""
    capacity = 20.0
    unit = capacity / RESOLUTION
    offsets = (0.0, 0.49 * unit, 0.51 * unit, unit, -0.49 * unit)
    classes = []
    for index in range(rng.randint(2, 4)):
        items = []
        for _ in range(rng.randint(2, 4)):
            base = rng.randint(0, 12) * 1.0
            weight = max(0.0, base + rng.choice(offsets))
            # tiny integer values maximize equal-value alternatives
            items.append(
                MCKPItem(value=float(rng.randint(0, 3)), weight=weight)
            )
        classes.append(MCKPClass(f"c{index}", tuple(items)))
    return MCKPInstance(classes=tuple(classes), capacity=capacity)


def build_corpus():
    rng = random.Random(20140601)  # DAC'14, for the grep trail
    corpus = [plain_instance(rng) for _ in range(PLAIN_COUNT)]
    corpus += [adversarial_instance(rng) for _ in range(ADVERSARIAL_COUNT)]
    return corpus


def quantized_weight(selection) -> int:
    unit = selection.instance.capacity / RESOLUTION
    total = 0
    for cls in selection.instance.classes:
        item = cls.items[selection.choices[cls.class_id]]
        total += _quantize_weight(item.weight, unit)
    return total


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


@pytest.fixture(scope="module")
def serial(corpus):
    """The serial solve_dp answers — the bit-identity baseline."""
    return [
        solve_dp(instance, resolution=RESOLUTION) for instance in corpus
    ]


@pytest.fixture(scope="module")
def reference(corpus):
    """The reference-DP answers — the optimum-equivalence oracle."""
    return [
        solve_dp_reference(instance, resolution=RESOLUTION)
        for instance in corpus
    ]


def assert_bit_identical(selection, baseline, instance):
    if baseline is None:
        assert selection is None
        return
    assert selection is not None
    assert selection.choices == baseline.choices
    assert selection.total_value == baseline.total_value
    assert selection.total_weight == baseline.total_weight
    assert selection.instance is instance


def test_corpus_contract(corpus, reference):
    """The corpus stays large and interesting: 300+ instances, a real
    adversarial share, and both feasible and infeasible outcomes."""
    assert len(corpus) >= 300
    assert ADVERSARIAL_COUNT >= 50
    feasible = sum(1 for ref in reference if ref is not None)
    assert 0 < feasible < len(corpus)


def test_optimum_equivalence_with_reference(corpus, serial, reference):
    """Both exact DPs agree on feasibility, optimal value, and the
    minimal quantized weight of the optimum (values are integer-valued
    floats by corpus construction, so == is exact)."""
    disagreements = 0
    for instance, fast, ref in zip(corpus, serial, reference):
        if ref is None:
            assert fast is None
            continue
        assert fast is not None
        assert fast.total_value == ref.total_value
        assert fast.total_weight <= instance.capacity + 1e-9
        assert quantized_weight(fast) == quantized_weight(ref)
        if fast.choices != ref.choices:
            disagreements += 1
    # the adversarial sub-corpus must actually exercise tie-breaking:
    # if every argmax coincided, the ties we engineered never happened
    assert disagreements > 0


def test_cache_hit_path_is_bit_identical_to_serial(corpus, serial):
    cache = SolverCache(maxsize=1024)
    for instance, baseline in zip(corpus, serial):
        miss = cache.solve(
            "dp", solve_dp, instance, resolution=RESOLUTION
        )
        hit = cache.solve(
            "dp", solve_dp, instance, resolution=RESOLUTION
        )
        assert_bit_identical(miss, baseline, instance)
        assert_bit_identical(hit, baseline, instance)
    assert cache.hits == len(corpus)
    assert cache.misses == len(corpus)


@pytest.mark.parametrize("workers", [1, 2])
def test_batched_sharded_path_is_bit_identical_to_serial(
    corpus, serial, workers
):
    cache = SolverCache(maxsize=1024)
    entries = [
        ("dp", instance, {"resolution": RESOLUTION})
        for instance in corpus
    ]
    with SweepRunner(workers=workers) as runner:
        # inline_units=0 forces every miss through the pool so this
        # test keeps pinning the sharded merge path specifically
        solver = ShardSolver(runner, cache=cache, inline_units=0)
        # batch sizes mimic service micro-batches; the second pass runs
        # entirely on cache hits and must not drift
        first_pass = []
        for start in range(0, len(entries), 16):
            first_pass += solver.solve_batch(entries[start:start + 16])
        second_pass = solver.solve_batch(entries)
    assert cache.hits >= len(entries)
    for selection, baseline, instance in zip(first_pass, serial, corpus):
        assert_bit_identical(selection, baseline, instance)
    for selection, baseline, instance in zip(second_pass, serial, corpus):
        assert_bit_identical(selection, baseline, instance)


def churned_sibling(instance, rng: random.Random) -> MCKPInstance:
    """A near-miss neighbour: same classes except the last one."""
    mutated = MCKPClass(
        instance.classes[-1].class_id,
        tuple(
            MCKPItem(
                value=float(rng.randint(0, 50)),
                weight=rng.uniform(0.0, 12.0),
            )
            for _ in range(rng.randint(2, 5))
        ),
    )
    return MCKPInstance(
        classes=instance.classes[:-1] + (mutated,),
        capacity=instance.capacity,
    )


@pytest.mark.parametrize(
    "path", ["scratch", "cached_hit", "delta_partial_hit"]
)
def test_every_solver_path_is_bit_identical(corpus, serial, path):
    """The whole corpus through each service solve path: the answer is
    bit-for-bit the serial ``solve_dp`` one, whatever route it took."""
    from repro.knapsack import solve_delta

    if path == "scratch":
        # the delta engine with no state IS the scratch route the
        # service uses to seed its warm-start index
        for instance, baseline in zip(corpus, serial):
            result = solve_delta(instance, resolution=RESOLUTION)
            assert result.reused_layers == 0
            assert_bit_identical(result.selection, baseline, instance)
    elif path == "cached_hit":
        cache = SolverCache(maxsize=1024)
        for instance, baseline in zip(corpus, serial):
            cache.solve("dp", solve_dp, instance, resolution=RESOLUTION)
            hit = cache.solve(
                "dp", solve_dp, instance, resolution=RESOLUTION
            )
            assert_bit_identical(hit, baseline, instance)
        assert cache.hits == len(corpus)
    else:  # delta_partial_hit
        rng = random.Random(777)
        warm_started = 0
        for instance, baseline in zip(corpus, serial):
            sibling = churned_sibling(instance, rng)
            state = solve_delta(sibling, resolution=RESOLUTION).state
            result = solve_delta(
                instance, resolution=RESOLUTION, state=state
            )
            warm_started += result.reused_layers > 0
            assert_bit_identical(result.selection, baseline, instance)
        # siblings differ only in the last class, so virtually every
        # solve must actually have warm-started — no silent fallback
        assert warm_started >= len(corpus) * 9 // 10


def test_inline_and_sharded_routes_are_bit_identical(corpus, serial):
    """Small batches dodge the process pool (``inline_units``); the
    inline route must answer exactly what the sharded route answers."""
    subset = list(range(0, 40))
    entries = [
        ("dp", corpus[i], {"resolution": RESOLUTION}) for i in subset
    ]
    with SweepRunner(workers=2) as runner:
        pooled = ShardSolver(
            runner, cache=SolverCache(maxsize=64), inline_units=0
        )
        inline = ShardSolver(
            runner, cache=SolverCache(maxsize=64),
            inline_units=len(entries),
        )
        pooled_out = pooled.solve_batch(entries)
        inline_out = inline.solve_batch(entries)
    assert pooled.inline_batches == 0
    assert inline.inline_batches == 1
    for i, a, b in zip(subset, pooled_out, inline_out):
        assert_bit_identical(a, serial[i], corpus[i])
        assert_bit_identical(b, serial[i], corpus[i])


def test_shard_solver_near_miss_path_is_bit_identical(corpus, serial):
    """The service-level delta route: a batch of churned siblings seeds
    the cache's state index, then the original corpus arrives and must
    be answered partly via ``probe_delta`` warm starts — bit-identical,
    with the near-miss counters actually moving."""
    rng = random.Random(424242)
    subset = list(range(0, len(corpus), 5))  # every 5th instance
    cache = SolverCache(maxsize=1024, delta_maxstates=len(subset) + 1)
    with SweepRunner(workers=1) as runner:
        solver = ShardSolver(runner, cache=cache)
        siblings = [
            ("dp", churned_sibling(corpus[i], rng),
             {"resolution": RESOLUTION})
            for i in subset
        ]
        solver.solve_batch(siblings)
        results = solver.solve_batch(
            [
                ("dp", corpus[i], {"resolution": RESOLUTION})
                for i in subset
            ]
        )
    for index, selection in zip(subset, results):
        assert_bit_identical(selection, serial[index], corpus[index])
    assert cache.near_hits > 0
    assert solver.delta_solves > 0
    assert solver.delta_layers_reused > 0


def test_energy_odm_matches_brute_force_enumerator():
    """Differential pin for the energy-aware ODM path.

    Blended instances carry negative and non-integer item values, which
    none of the corpus above exercises; enumerate every selection of a
    quantized copy (the exact feasible region the DP sees) and demand
    agreement on feasibility and the optimal value.  A mildly
    overloaded sub-corpus keeps infeasible outcomes in the mix.
    """
    import math

    from repro.core.odm import build_mckp
    from repro.knapsack import solve_brute_force
    from repro.scenarios import EnergyObjective, ScenarioSpec
    from repro.scenarios.campaign import _quantized_copy
    from repro.scenarios.generator import generate_scenario

    objective = EnergyObjective(benefit_weight=1.0, energy_weight=8.0)
    specs = (
        ScenarioSpec(num_tasks=4, num_benefit_points=2, util_cap=0.9,
                     energy_profile="radio_heavy"),
        ScenarioSpec(num_tasks=4, num_benefit_points=2, util_cap=1.4),
    )
    feasible = infeasible = 0
    for seed in range(30):
        for spec in specs:
            tasks = generate_scenario(spec, seed)
            instance = build_mckp(tasks, objective=objective)
            fast = solve_dp(instance, resolution=RESOLUTION)
            exact = solve_brute_force(
                _quantized_copy(instance, RESOLUTION)
            )
            assert (fast is None) == (exact is None)
            if fast is None:
                infeasible += 1
                continue
            feasible += 1
            assert math.isclose(
                fast.total_value, exact.total_value,
                rel_tol=1e-9, abs_tol=1e-9,
            )
    # the pin only means something if both outcomes actually occurred
    assert feasible > 0
    assert infeasible > 0

"""Degradation ladder tests, including the property-based safety
invariant: no rung ever admits a task set the exact path would reject.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedulability import theorem3_test
from repro.knapsack import solve_dp, solve_heu_oe
from repro.service import (
    AdmissionRequest,
    DegradationLevel,
    DegradationPolicy,
    build_request_instance,
)
from repro.workloads.generator import random_offloading_task_set


def test_levels_are_ordered():
    assert DegradationLevel.EXACT < DegradationLevel.HEURISTIC
    assert DegradationLevel.HEURISTIC < DegradationLevel.LOCAL_ONLY
    assert DegradationLevel.EXACT.label == "exact"
    assert DegradationLevel.LOCAL_ONLY.label == "local_only"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"heuristic_watermark": 0.0},
        {"heuristic_watermark": 1.5},
        {"heuristic_watermark": 0.8, "local_watermark": 0.5},
        {"local_watermark": 1.5},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        DegradationPolicy(**kwargs)


def test_level_for_watermarks():
    policy = DegradationPolicy(
        heuristic_watermark=0.5, local_watermark=0.9
    )
    assert policy.level_for(0, 10) == DegradationLevel.EXACT
    assert policy.level_for(4, 10) == DegradationLevel.EXACT
    assert policy.level_for(5, 10) == DegradationLevel.HEURISTIC
    assert policy.level_for(8, 10) == DegradationLevel.HEURISTIC
    assert policy.level_for(9, 10) == DegradationLevel.LOCAL_ONLY
    assert policy.level_for(10, 10) == DegradationLevel.LOCAL_ONLY


def test_level_for_input_validation():
    policy = DegradationPolicy()
    with pytest.raises(ValueError):
        policy.level_for(-1, 10)
    with pytest.raises(ValueError):
        policy.level_for(0, 0)


# ----------------------------------------------------------------------
# the safety invariant, property-based
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    utilization=st.floats(min_value=0.2, max_value=1.4),
    num_tasks=st.integers(min_value=2, max_value=6),
    scale=st.sampled_from([0.8, 1.0, 1.3]),
)
@settings(max_examples=60)
def test_no_rung_admits_what_exact_rejects(
    seed, utilization, num_tasks, scale
):
    """HEURISTIC admits iff EXACT admits; LOCAL_ONLY admits only if
    EXACT admits.  Degradation trades benefit, never safety."""
    rng = np.random.default_rng(seed)
    tasks = random_offloading_task_set(
        rng, num_tasks=num_tasks, total_utilization=utilization
    )
    request = AdmissionRequest(
        request_id="prop",
        tasks=tasks,
        server_estimates={"edge": scale, "cloud": 1.0},
    )
    instance = build_request_instance(
        request, request.server_estimates
    )
    resolution = 20_000
    exact = solve_dp(instance, resolution=resolution)
    heuristic = solve_heu_oe(instance)
    local_check = theorem3_test(tasks, ())

    # The ceil-quantized DP is (slightly) pessimistic: it may reject a
    # borderline set whose true weight still fits the capacity.  The
    # gap is bounded by one quantization unit per class.
    quantization_slack = (
        instance.capacity * (len(instance.classes) + 1) / resolution
        + 1e-9
    )
    boundary = instance.capacity - quantization_slack

    # Exact admission implies heuristic admission: HEU-OE starts from
    # the all-lightest selection, which fits whenever anything does.
    # Degrading never *loses* an admission.
    if exact is not None:
        assert heuristic is not None
    # The converse holds away from the quantization boundary; at the
    # boundary the heuristic's answer must still be Theorem-3 safe.
    if heuristic is not None and exact is None:
        assert heuristic.total_weight >= boundary
    # The all-local configuration is one particular selection of the
    # exact instance: its feasibility implies exact feasibility, again
    # modulo the quantization boundary.
    if local_check.feasible and exact is None:
        assert local_check.total_demand_rate >= boundary
    # And every admitted selection must clear Theorem 3 end-to-end —
    # the unconditional safety half of the invariant.
    for selection in (exact, heuristic):
        if selection is None:
            continue
        assert selection.total_weight <= instance.capacity + 1e-9

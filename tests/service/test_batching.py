"""Micro-batcher unit tests: policy validation, coalescing, shedding."""

import asyncio

import pytest

from repro.service import BatchPolicy, MicroBatcher


def run(coro):
    return asyncio.run(coro)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_batch": 0},
        {"max_wait": -0.1},
        {"queue_capacity": 0},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        BatchPolicy(**kwargs)


def test_offer_sheds_at_capacity():
    async def scenario():
        batcher = MicroBatcher(BatchPolicy(queue_capacity=3))
        assert all(batcher.offer(i) for i in range(3))
        assert batcher.depth == 3
        assert batcher.capacity == 3
        assert not batcher.offer(99)  # full -> shed
        assert batcher.depth == 3

    run(scenario())


def test_collect_drains_queued_up_to_max_batch():
    async def scenario():
        batcher = MicroBatcher(
            BatchPolicy(max_batch=4, max_wait=0.0, queue_capacity=16)
        )
        for i in range(7):
            batcher.offer(i)
        first = await batcher.collect()
        second = await batcher.collect()
        assert first == [0, 1, 2, 3]  # capped at max_batch
        assert second == [4, 5, 6]  # rest, no waiting at max_wait=0
        assert batcher.depth == 0

    run(scenario())


def test_collect_lingers_for_stragglers():
    async def scenario():
        batcher = MicroBatcher(
            BatchPolicy(max_batch=8, max_wait=0.25, queue_capacity=16)
        )

        async def straggler():
            await asyncio.sleep(0.02)
            batcher.offer("late")

        task = asyncio.create_task(straggler())
        batcher.offer("early")
        batch = await batcher.collect()
        await task
        assert batch == ["early", "late"]

    run(scenario())


def test_collect_max_batch_one_skips_linger():
    async def scenario():
        batcher = MicroBatcher(
            BatchPolicy(max_batch=1, max_wait=10.0, queue_capacity=4)
        )
        batcher.offer("only")
        batcher.offer("next")
        assert await batcher.collect() == ["only"]
        assert await batcher.collect() == ["next"]

    run(scenario())


def test_collect_blocks_until_first_item():
    async def scenario():
        batcher = MicroBatcher(BatchPolicy(max_wait=0.0))

        async def feed():
            await asyncio.sleep(0.02)
            batcher.offer(42)

        task = asyncio.create_task(feed())
        batch = await batcher.collect()
        await task
        assert batch == [42]

    run(scenario())

"""Teardown convergence for ``cancel_and_wait``.

The 3.11 ``wait_for`` race can hand a background loop a swallowed
cancellation, leaving it alive in "cancelling" state; a naive
``await task`` after one ``cancel()`` then never returns.  The helper
must converge anyway — and still propagate nothing to the caller.
"""

import asyncio

from repro.service.aio import cancel_and_wait


def test_plain_task_is_cancelled_and_awaited():
    async def scenario():
        task = asyncio.create_task(asyncio.sleep(100))
        await cancel_and_wait(task)
        return task

    task = asyncio.run(scenario())
    assert task.cancelled()


def test_swallowed_first_cancellation_still_converges():
    async def stubborn():
        try:
            await asyncio.sleep(100)
        except asyncio.CancelledError:
            pass  # simulates wait_for eating the cancellation
        await asyncio.sleep(100)

    async def scenario():
        task = asyncio.create_task(stubborn())
        await asyncio.sleep(0)  # let it reach the first sleep
        await cancel_and_wait(task, poke_interval=0.01)
        return task

    task = asyncio.run(scenario())
    assert task.done()


def test_failed_task_exception_is_retrieved_not_raised():
    async def doomed():
        raise RuntimeError("boom")

    async def scenario():
        task = asyncio.create_task(doomed())
        await asyncio.sleep(0)
        await cancel_and_wait(task)
        return task

    task = asyncio.run(scenario())
    assert isinstance(task.exception(), RuntimeError)
